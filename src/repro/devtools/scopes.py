"""Scope and symbol-table helpers for the concurrency rules (REP1xx).

The concurrency pass needs facts the determinism rules never did:

* which attributes a class has *declared* lock-protected (the
  ``# guarded-by: <lock>`` annotation grammar, parsed here);
* which locks are held at a given AST node (``with self._lock:``
  context tracking, threaded through :func:`nodes_with_guards`);
* which local names inside a worker function derive from its
  parameters (the REP104 disjoint-write contract — row indices must
  flow from the shard's own task arguments);
* which functions in a module are dispatched to ``ShardPool`` /
  executor workers at all (:func:`worker_functions`).

Everything here is a pure AST/tokenize walk: linting a file never
imports or executes it.

The ``# guarded-by:`` grammar
-----------------------------

Attached to an attribute declaration (any assignment to ``self.X``,
usually in ``__init__``, or a class-body annotation)::

    self._history: Dict[str, Deque[float]] = {}  # guarded-by: _lock

declares that every ``self._history`` access outside ``__init__`` must
happen under ``with self._lock:`` (REP101).  Attached to a ``def``
line::

    def _live_spend(self, account, now):  # guarded-by: _lock

declares that the *caller* must hold the lock: the method body is
checked as if the lock were held, and every call site is checked for
actually holding it.

The special guard name ``<event-loop>`` declares single-task
confinement instead of a lock: the attribute may only be touched from
``async def`` methods (everything then runs on the one event loop, so
no lock is needed — but a sync method touching it could run on any
thread).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Union

from repro.devtools.rules import attr_tokens

#: The pseudo-guard for asyncio single-task confinement.
EVENT_LOOP_GUARD = "<event-loop>"

_GUARD_RE = re.compile(r"#\s*guarded-by:\s*(?P<guard>\S+)")

AnyFunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def guard_comments(source: str) -> Dict[int, str]:
    """Map line number -> guard name for every ``# guarded-by:`` comment."""
    out: Dict[int, str] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type != tokenize.COMMENT:
                continue
            match = _GUARD_RE.search(tok.string)
            if match is not None:
                out[tok.start[0]] = match.group("guard")
    except tokenize.TokenizeError:
        pass  # the ast parse will report the file as unparseable
    return out


def _stmt_guard(
    stmt: ast.stmt, comments: Dict[int, str]
) -> Optional[str]:
    """The guard annotated on any physical line of *stmt* (declarations
    can span lines — a ``self._pending: List[...] = []`` wrapped by the
    formatter keeps its trailing comment on the last line)."""
    end = stmt.end_lineno or stmt.lineno
    for line in range(stmt.lineno, end + 1):
        guard = comments.get(line)
        if guard is not None:
            return guard
    return None


@dataclass
class ClassScope:
    """One class with its guard annotations resolved."""

    node: ast.ClassDef
    name: str
    #: method name -> def node (own body only, not nested classes).
    methods: Dict[str, AnyFunctionDef] = field(default_factory=dict)
    #: attribute name -> (guard name, declaration line).
    guarded_attrs: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: method name -> guard the *caller* must hold.
    method_guards: Dict[str, str] = field(default_factory=dict)


def collect_class_scopes(
    tree: ast.Module, source: str
) -> List[ClassScope]:
    """Every class in *tree* with its ``# guarded-by:`` annotations."""
    comments = guard_comments(source)
    scopes: List[ClassScope] = []
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        scope = ClassScope(node=cls, name=cls.name)
        for item in cls.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope.methods[item.name] = item
                # A guard on the signature (def line through the line
                # before the body) binds the method, not an attribute.
                sig_end = item.body[0].lineno - 1 if item.body else item.lineno
                for line in range(item.lineno, max(item.lineno, sig_end) + 1):
                    guard = comments.get(line)
                    if guard is not None:
                        scope.method_guards[item.name] = guard
                        break
                # Attribute declarations live in method bodies
                # (conventionally __init__).
                for stmt in ast.walk(item):
                    if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                        continue
                    guard = _stmt_guard(stmt, comments)
                    if guard is None:
                        continue
                    targets = (
                        stmt.targets
                        if isinstance(stmt, ast.Assign)
                        else [stmt.target]
                    )
                    for target in targets:
                        tokens = attr_tokens(target)
                        if len(tokens) == 2 and tokens[0] == "self":
                            scope.guarded_attrs[tokens[1]] = (
                                guard,
                                stmt.lineno,
                            )
            elif isinstance(item, (ast.Assign, ast.AnnAssign)):
                # Class-body declaration: ``hits: int = 0  # guarded-by: _lock``
                guard = _stmt_guard(item, comments)
                if guard is None:
                    continue
                targets = (
                    item.targets
                    if isinstance(item, ast.Assign)
                    else [item.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        scope.guarded_attrs[target.id] = (
                            guard,
                            item.lineno,
                        )
        if scope.guarded_attrs or scope.method_guards:
            scopes.append(scope)
    return scopes


def _with_guard_name(expr: ast.AST) -> Optional[str]:
    """The guard a ``with`` context expression acquires, or ``None``.

    Recognises ``with self._lock:`` and ``with _lock:`` (module-level
    lock).  Anything fancier (a lock fetched from a dict, a condition
    variable method) is conservatively not treated as acquiring a
    guard.
    """
    tokens = attr_tokens(expr)
    if len(tokens) == 2 and tokens[0] == "self":
        return tokens[1]
    if len(tokens) == 1:
        return tokens[0]
    return None


def nodes_with_guards(
    fn: AnyFunctionDef, initial: FrozenSet[str] = frozenset()
) -> Iterator[Tuple[ast.AST, FrozenSet[str]]]:
    """Yield ``(node, held_guards)`` for every node under *fn*.

    ``with self._lock:`` bodies extend the held set; the context
    expressions themselves are yielded with the *outer* set (taking the
    lock is not yet holding it).  Nested ``def``s inherit the held set
    at their definition site — a deliberate simplification: an
    immediately-invoked helper sees the true set, a stored closure may
    get a false negative, never a false positive.
    """

    def visit(
        node: ast.AST, held: FrozenSet[str]
    ) -> Iterator[Tuple[ast.AST, FrozenSet[str]]]:
        yield node, held
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: Set[str] = set()
            for item in node.items:
                yield from visit(item, held)
                guard = _with_guard_name(item.context_expr)
                if guard is not None:
                    acquired.add(guard)
            inner = held | frozenset(acquired)
            for stmt in node.body:
                yield from visit(stmt, inner)
        else:
            for child in ast.iter_child_nodes(node):
                yield from visit(child, held)

    for child in ast.iter_child_nodes(fn):
        yield from visit(child, initial)


def param_names(fn: AnyFunctionDef) -> Set[str]:
    """Every parameter name of *fn* (excluding ``self``/``cls``)."""
    args = fn.args
    names = {
        a.arg
        for a in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        )
    }
    for star in (args.vararg, args.kwarg):
        if star is not None:
            names.add(star.arg)
    names.discard("self")
    names.discard("cls")
    return names


def param_derived(fn: AnyFunctionDef) -> Set[str]:
    """Names transitively derived from *fn*'s parameters.

    Fixpoint over the function's own assignments (nested ``def``s
    excluded): a local joins the set when its right-hand side mentions
    any name already in it.  ``done = mv[arrive]`` is derived via
    ``mv``; ``idx = np.arange(n)`` is not (unless ``n`` is).  This is
    deliberately generous — over-approximating "derived" only relaxes
    the REP104 index check, it never invents a finding.
    """
    derived = param_names(fn)
    own = list(_own_nodes(fn))
    changed = True
    while changed:
        changed = False
        for node in own:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                targets, value = [node.target], node.value
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets, value = [node.target], node.iter
            if value is None:
                continue
            if not any(
                isinstance(sub, ast.Name) and sub.id in derived
                for sub in ast.walk(value)
            ):
                continue
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name) and sub.id not in derived:
                        derived.add(sub.id)
                        changed = True
    return derived


def attribute_aliases(fn: AnyFunctionDef) -> Set[str]:
    """Locals that alias an attribute object (``st = self.state``).

    A plain attribute alias still points at shared memory, so writes
    through it are shared writes.  A *subscripted* right-hand side
    (``la = lat[mv]`` — numpy fancy indexing) allocates a fresh copy
    and is not an alias.  Attribute chains behind a call
    (``buf = self.ring().base``) are treated as aliases too, erring
    toward shared.
    """
    aliases: Set[str] = set()
    changed = True
    own = list(_own_nodes(fn))
    while changed:
        changed = False
        for node in own:
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            is_alias = isinstance(value, ast.Attribute) or (
                isinstance(value, ast.Name) and value.id in aliases
            )
            if not is_alias:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id not in aliases:
                    aliases.add(target.id)
                    changed = True
    return aliases


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested ``def``s."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# Worker-function discovery (REP104)
# ----------------------------------------------------------------------
def _defs_by_name(tree: ast.Module) -> Dict[str, List[AnyFunctionDef]]:
    out: Dict[str, List[AnyFunctionDef]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.setdefault(node.name, []).append(node)
    return out


def _callable_name(expr: ast.expr) -> Optional[str]:
    """The bare name a callable reference resolves to in this module.

    ``self._move_rows`` / ``fleet._move_rows`` / ``_move_rows`` all
    resolve to ``"_move_rows"``; lambdas and partials resolve to
    nothing (their bodies are checked where they are written, which is
    inside the dispatching function — good enough).
    """
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def worker_functions(tree: ast.Module) -> List[AnyFunctionDef]:
    """Functions dispatched to ``ShardPool``/executor *threads*.

    Seeds: the first argument of every ``.map_ordered(fn, tasks)`` call
    and the second argument of every ``.run_in_executor(executor, fn,
    ...)`` call.  The closure then follows plain ``helper(...)`` /
    ``self.helper(...)`` calls inside worker bodies to other functions
    defined in the same module — ``_move_rows`` pulls ``_ring_append``
    into the checked set.

    ``.submit`` is deliberately *not* a seed: the orchestrator submits
    whole campaigns to a ``ProcessPoolExecutor``, whose workers do not
    share memory, so the disjoint-write contract does not apply there.
    """
    by_name = _defs_by_name(tree)
    seeds: List[AnyFunctionDef] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        target: Optional[ast.expr] = None
        if func.attr == "map_ordered" and node.args:
            target = node.args[0]
        elif func.attr == "run_in_executor" and len(node.args) >= 2:
            target = node.args[1]
        if target is None:
            continue
        name = _callable_name(target)
        if name is not None:
            seeds.extend(by_name.get(name, []))

    workers: List[AnyFunctionDef] = []
    visited: Set[int] = set()
    queue = list(seeds)
    while queue:
        fn = queue.pop()
        if id(fn) in visited:
            continue
        visited.add(id(fn))
        workers.append(fn)
        for node in _own_nodes(fn):
            if not isinstance(node, ast.Call):
                continue
            name = _callable_name(node.func)
            if name is None:
                continue
            tokens = attr_tokens(node.func)
            # Only follow module-local calls: bare names and self.X.
            if isinstance(node.func, ast.Attribute) and (
                not tokens or tokens[0] != "self"
            ):
                continue
            queue.extend(by_name.get(name, []))
    return workers
