"""Command-line interface: run campaigns and analyses from a shell.

Four subcommands mirror the study's workflow:

* ``measure``  — run a measurement campaign against a simulated city and
  save the observation log (JSON lines);
* ``analyze``  — run the audit pipeline over a saved log and print the
  §4/§5 summary (supply, demand, surge stats, jitter);
* ``validate`` — the §3.5 taxi-trace validation experiment;
* ``calibrate`` — the §3.4 visibility-radius experiment;
* ``serve``    — serve the marketplace over real sockets: the REST
  estimates endpoints plus the `pingClient` WebSocket stream
  (``repro.service``), with the §3.2 rate limit enforced as HTTP 429;
* ``worker``   — serve campaigns to a sweep dispatcher over TCP
  (``repro.parallel.cluster``): ``measure --workers host:port,...``
  dials listening workers, ``measure --cluster-listen`` accepts
  ``worker --connect`` instead — outcomes byte-identical to the local
  process-pool sweep either way;
* ``lint``     — static analysis over the source tree: the determinism
  rules (REP001-REP006) plus the concurrency/async hazard rules
  (REP101-REP105); text, ``--format json``, or ``--format sarif``
  reports, ``--explain REPxxx`` for rule docs; see
  ``docs/static_analysis.md``.

Examples::

    python -m repro.cli measure --city manhattan --hours 2 \
        --warmup-hours 7 --out mhtn.jsonl
    python -m repro.cli analyze mhtn.jsonl
    python -m repro.cli validate --cabs 300 --hours 2
    python -m repro.cli calibrate --city sf --hour 9
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
from typing import List, Optional

from repro.marketplace.config import manhattan_config, sf_config
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.types import CarType
from repro.measurement.calibrate import visibility_radius
from repro.measurement.fleet import Fleet, MarketplaceWorld, TaxiWorld
from repro.measurement.placement import place_clients
from repro.measurement.records import CampaignLog


def _config_for(city: str, jitter: float):
    if city == "manhattan":
        return manhattan_config(jitter_probability=jitter)
    if city == "sf":
        return sf_config(jitter_probability=jitter)
    raise SystemExit(f"unknown city {city!r} (use manhattan or sf)")


def _seed_out_path(out: str, seed: int) -> str:
    """Per-seed log path: ``mhtn.jsonl`` -> ``mhtn.s7.jsonl`` for seed 7.

    The seed tag goes before the (possibly double, ``.jsonl.gz``)
    suffix so the compression extension keeps driving the writer.
    """
    base = os.path.basename(out)
    directory = os.path.dirname(out)
    for suffix in (".jsonl.gz", ".jsonl"):
        if base.endswith(suffix):
            stem = base[: -len(suffix)]
            return os.path.join(directory, f"{stem}.s{seed}{suffix}")
    root, ext = os.path.splitext(base)
    return os.path.join(directory, f"{root}.s{seed}{ext}")


def cmd_measure(args: argparse.Namespace) -> int:
    seeds = (
        [int(s) for s in args.seeds.split(",") if s.strip()]
        if args.seeds
        else [args.seed]
    )
    if len(seeds) != len(set(seeds)):
        raise SystemExit("--seeds must be distinct")
    workers = [
        address.strip()
        for address in (args.workers or "").split(",")
        if address.strip()
    ]
    if workers and args.cluster_listen is not None:
        raise SystemExit("--workers and --cluster-listen are "
                         "mutually exclusive")
    cluster_mode = bool(workers) or args.cluster_listen is not None
    if len(seeds) == 1 and args.jobs <= 1 and not cluster_mode:
        # Single campaign: the original in-process path, exactly.
        config = _config_for(args.city, args.jitter)
        engine = MarketplaceEngine(
            config,
            seed=seeds[0],
            state_shards=args.state_shards,
            shard_executor=args.shard_executor,
        )
        positions = place_clients(config.region)
        fleet = Fleet(positions, car_types=[CarType.UBERX],
                      ping_interval_s=args.ping_interval)
        print(f"{args.city}: {len(positions)} clients, "
              f"{args.hours:g} h campaign after {args.warmup_hours:g} h "
              "warm-up", file=sys.stderr)
        log = fleet.run(
            MarketplaceWorld(engine),
            duration_s=args.hours * 3600.0,
            city=args.city,
            warmup_s=args.warmup_hours * 3600.0,
        )
        log.save(args.out)
        engine.close()
        print(f"wrote {len(log.rounds)} rounds to {args.out}")
        return 0

    # Sweep: one campaign per seed via the process-pool orchestrator.
    from repro.parallel.orchestrator import CampaignSpec, run_sweep

    specs = [
        CampaignSpec(
            key=f"{args.city}-s{seed}",
            city=args.city,
            seed=seed,
            hours=args.hours,
            warmup_hours=args.warmup_hours,
            ping_interval_s=args.ping_interval,
            jitter=args.jitter,
            out=(
                _seed_out_path(args.out, seed)
                if len(seeds) > 1
                else args.out
            ),
            engine_flags=tuple(
                (name, value)
                for name, value in (
                    ("state_shards", args.state_shards),
                    ("shard_executor", args.shard_executor),
                )
                if value is not None
            ),
        )
        for seed in seeds
    ]
    if cluster_mode:
        # Cluster dispatch: same specs, same spec-ordered outcomes,
        # byte-identical identity to the local pool below.
        from repro.parallel.cluster import (
            run_cluster_sweep,
            run_listening_sweep,
        )

        if workers:
            print(f"{args.city}: cluster sweep of {len(specs)} "
                  f"campaign(s) over {len(workers)} worker(s)",
                  file=sys.stderr)
            outcomes = run_cluster_sweep(
                specs,
                workers,
                spec_timeout_s=args.spec_timeout,
                max_attempts=args.max_attempts,
            )
        else:
            print(f"{args.city}: cluster sweep of {len(specs)} "
                  f"campaign(s)", file=sys.stderr)
            outcomes = run_listening_sweep(
                specs,
                args.cluster_listen,
                spec_timeout_s=args.spec_timeout,
                max_attempts=args.max_attempts,
                announce=lambda addr: print(
                    f"dispatching on {addr}; attach workers with "
                    f"`repro worker --connect {addr}`",
                    file=sys.stderr, flush=True,
                ),
            )
    else:
        print(f"{args.city}: sweep of {len(specs)} campaign(s), "
              f"jobs={args.jobs}", file=sys.stderr)
        outcomes = run_sweep(specs, jobs=args.jobs)
    failed = 0
    for outcome in outcomes:
        if outcome.ok:
            rounds = int((outcome.metrics or {}).get("rounds", 0))
            print(f"{outcome.key}: wrote {rounds} rounds to "
                  f"{outcome.out_path} "
                  f"(truth {outcome.truth_digest[:12]}...)"
                  if outcome.truth_digest
                  else f"{outcome.key}: ok")
        else:
            failed += 1
            print(f"{outcome.key}: FAILED — {outcome.error}",
                  file=sys.stderr)
    return 0 if failed == 0 else 1


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.parallel.cluster import (
        run_worker_connect,
        run_worker_listen,
    )

    if bool(args.connect) == bool(args.listen):
        raise SystemExit("worker: give exactly one of --connect "
                         "or --listen")
    jobs_label = "auto" if args.jobs is None else str(args.jobs)
    try:
        if args.connect:
            print(f"worker: dialing dispatcher at {args.connect} "
                  f"(jobs={jobs_label})", file=sys.stderr)
            count = run_worker_connect(args.connect, jobs=args.jobs)
            print(f"worker: sweep done, ran {count} campaign(s)",
                  file=sys.stderr)
        else:
            # The "listening on" line goes to stdout un-buffered: the
            # cluster bench and smoke scripts parse it to learn the
            # bound port when --listen used port 0.
            run_worker_listen(
                args.listen,
                jobs=args.jobs,
                announce=lambda addr: print(
                    f"worker: listening on {addr} (jobs={jobs_label})",
                    flush=True,
                ),
            )
    except KeyboardInterrupt:
        print("worker: shutting down", file=sys.stderr)
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.jitter import detect_jitter_events
    from repro.analysis.supply_demand import estimate_supply_demand
    from repro.analysis.surge_stats import (
        mean_multiplier,
        surge_episodes,
        surge_fraction,
    )

    log = CampaignLog.load(args.log)
    if getattr(args, "full", False):
        from repro.analysis.report import audit_campaign
        print(audit_campaign(log).render())
        return 0
    print(f"campaign: {log.city}, {len(log.rounds)} rounds, "
          f"{len(log.client_positions)} clients, "
          f"{log.ping_interval_s:g} s pings")

    estimates = estimate_supply_demand(log, car_type=CarType.UBERX)
    if len(estimates) > 2:
        supply = [e.supply for e in estimates[1:-1]]
        demand = [e.demand for e in estimates[1:-1]]
        print(f"supply/5min: mean {statistics.mean(supply):.1f}, "
              f"max {max(supply)}")
        print(f"demand/5min: mean {statistics.mean(demand):.1f}, "
              f"max {max(demand)} (upper bound)")

    multipliers: List[float] = []
    durations: List[float] = []
    jitter_count = 0
    for cid in log.client_ids:
        series = log.multiplier_series(cid, CarType.UBERX)
        multipliers.extend(m for _, m in series)
        durations.extend(e.duration_s for e in surge_episodes(series))
        jitter_count += len(detect_jitter_events(series, client_id=cid))
    if multipliers:
        indexed = list(enumerate(multipliers))
        print(f"surge: active {100 * surge_fraction(indexed):.0f}% of "
              f"samples, mean x{mean_multiplier(indexed):.2f}, "
              f"max x{max(multipliers):.1f}")
    if durations:
        print(f"surge episodes: {len(durations)}, median "
              f"{statistics.median(durations) / 60:.1f} min")
    print(f"jitter events detected: {jitter_count}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.geo.regions import midtown_manhattan
    from repro.taxi.generator import (
        TaxiGeneratorParams,
        TaxiTraceGenerator,
    )
    from repro.taxi.replay import TaxiReplayServer
    from repro.validation.validate import validate_against_taxis

    region = midtown_manhattan()
    generator = TaxiTraceGenerator(
        TaxiGeneratorParams(fleet_size=args.cabs, days=1.0),
        seed=args.seed, region=region,
    )
    replay = TaxiReplayServer(generator.generate(), seed=args.seed)
    fleet = Fleet(place_clients(region, radius_m=100.0),
                  ping_interval_s=args.ping_interval)
    log = fleet.run(TaxiWorld(replay), duration_s=args.hours * 3600.0,
                    city="taxi", warmup_s=9 * 3600.0)
    report = validate_against_taxis(log, replay, boundary=region.boundary)
    print(f"cars captured:   {100 * report.car_capture:.1f}%  (paper 97%)")
    print(f"deaths captured: {100 * report.death_capture:.1f}%  (paper 95%)")
    print(f"supply correlation: {report.supply_correlation:.3f}")
    print(f"demand correlation: {report.demand_correlation:.3f}")
    return 0 if report.car_capture > 0.8 else 1


def cmd_tracestats(args: argparse.Namespace) -> int:
    from repro.taxi.stats import compare_traces, summarize_trace

    if args.tlc_csv is not None:
        from repro.taxi.tlc import read_tlc_csv
        trips, read_stats = read_tlc_csv(
            args.tlc_csv, max_rows=args.max_rows
        )
        print(f"read {read_stats.kept}/{read_stats.rows} rows "
              f"({read_stats.bad_times} bad times, "
              f"{read_stats.bad_coordinates} bad coordinates)")
        if not trips:
            print("no usable trips")
            return 1
        summary = summarize_trace(trips)
        print("tlc trace:", summary.describe())
    else:
        from repro.taxi.generator import (
            TaxiGeneratorParams,
            TaxiTraceGenerator,
        )
        generator = TaxiTraceGenerator(
            TaxiGeneratorParams(fleet_size=args.cabs, days=args.days),
            seed=args.seed,
        )
        summary = summarize_trace(generator.generate())
        print("synthetic trace:", summary.describe())

    if args.compare_synthetic and args.tlc_csv is not None:
        from repro.taxi.generator import (
            TaxiGeneratorParams,
            TaxiTraceGenerator,
        )
        generator = TaxiTraceGenerator(
            TaxiGeneratorParams(fleet_size=args.cabs, days=args.days),
            seed=args.seed,
        )
        synthetic = summarize_trace(generator.generate())
        print("\nmetric          tlc        synthetic   ratio")
        for name, va, vb, ratio in compare_traces(summary, synthetic):
            print(f"{name:14s} {va:9.1f}  {vb:10.1f}  {ratio:6.2f}")
    return 0


def cmd_surgemap(args: argparse.Namespace) -> int:
    from repro.api.partner import PartnerView

    config = _config_for(args.city, jitter=0.0)
    engine = MarketplaceEngine(config, seed=args.seed)
    engine.run(args.hour * 3600.0)
    view = PartnerView(engine)
    print(f"{args.city} surge map at {args.hour:g}h "
          "(what the Partner app shows, Fig 1):")
    print(view.render())
    hottest = view.hottest_area()
    if hottest.is_surging:
        print(f"drivers are heading to area {hottest.area_id} "
              f"({hottest.name}, x{hottest.multiplier:.1f})")
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    config = _config_for(args.city, jitter=0.0)
    engine = MarketplaceEngine(config, seed=args.seed)
    engine.run(args.hour * 3600.0)
    radius = visibility_radius(
        MarketplaceWorld(engine), config.region.bounding_box.center
    )
    if radius is None:
        print("no cars visible — try a busier hour")
        return 1
    print(f"{args.city} visibility radius at {args.hour:g}h: "
          f"{radius:.0f} m (paper: 247 m MHTN / 387 m SF)")
    spacing = 2 * radius
    clients = place_clients(config.region, radius_m=radius)
    print(f"grid at spacing {spacing:.0f} m -> {len(clients)} clients")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.api.ratelimit import RateLimiter
    from repro.service import AsgiHttpServer, MarketplaceService

    config = _config_for(args.city, args.jitter)
    engine = MarketplaceEngine(config, seed=args.seed)
    if args.hour > 0:
        print(f"{args.city}: warming engine to {args.hour:g}h ...",
              file=sys.stderr)
        engine.run(args.hour * 3600.0)
    service = MarketplaceService(
        engine,
        limiter=RateLimiter(limit=args.rate_limit),
        coalesce_window_s=args.coalesce_ms / 1000.0,
        city=args.city,
    )

    async def _serve() -> None:
        server = AsgiHttpServer(service, host=args.host, port=args.port)
        await server.start()
        print(f"serving {args.city} (seed {args.seed}, "
              f"t={engine.clock.now:g}s) on "
              f"http://{args.host}:{server.port}")
        print(f"  GET  http://{args.host}:{server.port}/v1/health")
        print(f"  GET  http://{args.host}:{server.port}"
              "/v1/estimates/price?account_id=me&start_lat=..&"
              "start_lon=..&end_lat=..&end_lon=..")
        print(f"  GET  http://{args.host}:{server.port}"
              "/v1/estimates/time?account_id=me&lat=..&lon=..")
        print(f"  GET  http://{args.host}:{server.port}"
              "/v1/surge?account_id=me&lat=..&lon=..")
        print(f"  WS   ws://{args.host}:{server.port}/v1/ping   "
              '{"account_id": "me", "lat": .., "lon": ..}')
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools.lint import (
        ALL_CODE_SUMMARIES,
        explain_rule,
        render_json,
        render_sarif,
        render_text,
        run_lint,
    )

    if args.explain:
        entry = explain_rule(args.explain.upper())
        if entry is None:
            known = ", ".join(sorted(ALL_CODE_SUMMARIES))
            print(
                f"lint: unknown rule code {args.explain!r} "
                f"(known: {known})",
                file=sys.stderr,
            )
            return 2
        print(entry)
        return 0

    if args.format and args.json and args.format != "json":
        print(f"lint: --json conflicts with --format {args.format}",
              file=sys.stderr)
        return 2
    fmt = args.format or ("json" if args.json else "text")

    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        print(f"lint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    result = run_lint(args.paths)
    if fmt == "json":
        report = render_json(result)
    elif fmt == "sarif":
        report = render_sarif(result)
    else:
        report = render_text(result,
                             show_suppressed=args.show_suppressed)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    else:
        print(report)
    return 1 if result.active else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Peeking Beneath the Hood of Uber — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    measure = sub.add_parser("measure", help="run a measurement campaign")
    measure.add_argument("--city", default="manhattan",
                         choices=("manhattan", "sf"))
    measure.add_argument("--hours", type=float, default=2.0)
    measure.add_argument("--warmup-hours", type=float, default=7.0)
    measure.add_argument("--ping-interval", type=float, default=5.0)
    measure.add_argument("--jitter", type=float, default=0.25)
    measure.add_argument("--seed", type=int, default=2015)
    measure.add_argument(
        "--seeds", default=None,
        help="comma-separated seed list — runs one campaign per seed "
             "(logs get a .s<seed> tag) and overrides --seed",
    )
    measure.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for multi-seed sweeps (1 = sequential; "
             "see repro.parallel.orchestrator)",
    )
    measure.add_argument(
        "--state-shards", type=int, default=None,
        help="spatial shards for the fleet-state tick (default: auto = "
             "min(4, cores); 1 forces the serial reference path; any "
             "count is bit-identical — see repro.parallel.partition)",
    )
    measure.add_argument(
        "--shard-executor", choices=("thread", "process"), default=None,
        help="stripe executor for the sharded fleet-state tick: "
             "'thread' (default) shares the engine's worker thread "
             "pool; 'process' runs stripes in worker processes over "
             "shared-memory arrays — past-the-GIL scaling for "
             "100k-driver metros, bit-identical either way (see "
             "repro.parallel.shm)",
    )
    measure.add_argument(
        "--workers", default=None, metavar="HOST:PORT[,HOST:PORT...]",
        help="dispatch the sweep to listening `repro worker` processes "
             "over TCP instead of the local process pool — outcomes "
             "are byte-identical either way (see "
             "repro.parallel.cluster)",
    )
    measure.add_argument(
        "--cluster-listen", default=None, metavar="HOST:PORT",
        help="listen here and dispatch to workers that dial in with "
             "`repro worker --connect` (port 0 = ephemeral; the "
             "--workers alternative for workers behind NAT)",
    )
    measure.add_argument(
        "--spec-timeout", type=float, default=None,
        help="cluster only: seconds before an unanswered campaign is "
             "requeued on another worker (default: no timeout)",
    )
    measure.add_argument(
        "--max-attempts", type=int, default=3,
        help="cluster only: assignment attempts per campaign before "
             "the dispatcher records a structured failure outcome "
             "(default 3)",
    )
    measure.add_argument("--out", required=True)
    measure.set_defaults(func=cmd_measure)

    worker = sub.add_parser(
        "worker",
        help="serve campaigns to a sweep dispatcher "
             "(the distributed half of `repro measure --workers`)",
    )
    worker.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="dial a dispatcher started with `repro measure "
             "--cluster-listen`; exits when the sweep is done",
    )
    worker.add_argument(
        "--listen", metavar="HOST:PORT", default=None,
        help="listen for dispatchers (`repro measure --workers`); "
             "port 0 = ephemeral (the bound address is printed); "
             "serves until interrupted",
    )
    worker.add_argument(
        "--jobs", type=int, default=None,
        help="local campaign worker processes (default: min(4, cores))",
    )
    worker.set_defaults(func=cmd_worker)

    analyze = sub.add_parser("analyze", help="audit a saved campaign log")
    analyze.add_argument("log")
    analyze.add_argument(
        "--full", action="store_true",
        help="render the full audit report with charts",
    )
    analyze.set_defaults(func=cmd_analyze)

    validate = sub.add_parser("validate",
                              help="taxi ground-truth validation")
    validate.add_argument("--cabs", type=int, default=300)
    validate.add_argument("--hours", type=float, default=2.0)
    validate.add_argument("--ping-interval", type=float, default=10.0)
    validate.add_argument("--seed", type=int, default=2013)
    validate.set_defaults(func=cmd_validate)

    tracestats = sub.add_parser(
        "tracestats",
        help="summarize a taxi trace (synthetic or real TLC CSV)",
    )
    tracestats.add_argument(
        "tlc_csv", nargs="?", default=None,
        help="path to a 2013-format TLC trip_data CSV "
             "(omit to summarize a synthetic trace)",
    )
    tracestats.add_argument("--cabs", type=int, default=300)
    tracestats.add_argument("--days", type=float, default=1.0)
    tracestats.add_argument("--seed", type=int, default=2013)
    tracestats.add_argument("--max-rows", type=int, default=None)
    tracestats.add_argument(
        "--compare-synthetic", action="store_true",
        help="also generate a synthetic trace and print the ratio table",
    )
    tracestats.set_defaults(func=cmd_tracestats)

    surgemap = sub.add_parser("surgemap",
                              help="render the Partner-app surge map")
    surgemap.add_argument("--city", default="manhattan",
                          choices=("manhattan", "sf"))
    surgemap.add_argument("--hour", type=float, default=18.0)
    surgemap.add_argument("--seed", type=int, default=2015)
    surgemap.set_defaults(func=cmd_surgemap)

    calibrate = sub.add_parser("calibrate",
                               help="visibility-radius experiment")
    calibrate.add_argument("--city", default="manhattan",
                           choices=("manhattan", "sf"))
    calibrate.add_argument("--hour", type=float, default=9.0)
    calibrate.add_argument("--seed", type=int, default=2015)
    calibrate.set_defaults(func=cmd_calibrate)

    serve = sub.add_parser(
        "serve",
        help="serve the marketplace over HTTP/WebSocket "
             "(REST estimates + the pingClient stream)",
    )
    serve.add_argument("--city", default="sf",
                       choices=("manhattan", "sf"))
    serve.add_argument("--hour", type=float, default=9.0,
                       help="simulated hours to warm the engine before "
                            "serving (default 9)")
    serve.add_argument("--seed", type=int, default=2015)
    serve.add_argument("--jitter", type=float, default=0.25)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8015,
                       help="TCP port (0 = ephemeral)")
    serve.add_argument("--rate-limit", type=int, default=1000,
                       help="REST requests per hour per account "
                            "(the paper's 1000/h cap, §3.2)")
    serve.add_argument("--coalesce-ms", type=float, default=2.0,
                       help="how long the first ping of a round waits "
                            "for concurrent pings to join the batch")
    serve.set_defaults(func=cmd_serve)

    lint = sub.add_parser(
        "lint",
        help="static analysis: determinism (REP001-REP006) and "
             "concurrency/async hazards (REP101-REP105)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default=None,
                      help="report format (default: text)")
    lint.add_argument("--json", action="store_true",
                      help="shorthand for --format json")
    lint.add_argument("--output", metavar="FILE",
                      help="write the report to FILE instead of stdout")
    lint.add_argument(
        "--show-suppressed", action="store_true",
        help="also list justified-suppressed findings",
    )
    lint.add_argument(
        "--explain", metavar="CODE",
        help="print the documentation entry for a rule code and exit",
    )
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
