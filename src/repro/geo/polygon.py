"""Polygons and bounding boxes on the lat/lon plane.

Surge areas in the paper are "odd-shaped" manually drawn polygons (Figs 18
and 19).  At city scale we can treat latitude/longitude as a flat plane,
which makes point-in-polygon a plain ray cast and areas/centroids the
standard shoelace formulas (scaled to metres using the local metric).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from repro.geo.latlon import EARTH_RADIUS_M, LatLon, planar_distance


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned lat/lon rectangle."""

    south: float
    west: float
    north: float
    east: float

    def __post_init__(self) -> None:
        if self.south > self.north:
            raise ValueError("south must not exceed north")
        if self.west > self.east:
            raise ValueError("west must not exceed east")

    @classmethod
    def around(cls, points: Iterable[LatLon]) -> "BoundingBox":
        """Smallest box containing every point."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot bound an empty set of points")
        return cls(
            south=min(p.lat for p in pts),
            west=min(p.lon for p in pts),
            north=max(p.lat for p in pts),
            east=max(p.lon for p in pts),
        )

    def contains(self, p: LatLon) -> bool:
        return self.south <= p.lat <= self.north and self.west <= p.lon <= self.east

    @property
    def center(self) -> LatLon:
        return LatLon(
            (self.south + self.north) / 2.0, (self.west + self.east) / 2.0
        )

    @property
    def corners(self) -> Tuple[LatLon, LatLon, LatLon, LatLon]:
        """SW, NW, NE, SE corners (counter-clockwise)."""
        return (
            LatLon(self.south, self.west),
            LatLon(self.north, self.west),
            LatLon(self.north, self.east),
            LatLon(self.south, self.east),
        )

    def width_m(self) -> float:
        """East-west extent in metres measured at the box's mid latitude."""
        mid = math.radians((self.south + self.north) / 2.0)
        return (
            math.radians(self.east - self.west)
            * EARTH_RADIUS_M
            * math.cos(mid)
        )

    def height_m(self) -> float:
        """North-south extent in metres."""
        return math.radians(self.north - self.south) * EARTH_RADIUS_M

    def expand(self, margin_m: float) -> "BoundingBox":
        """Box grown by *margin_m* metres on every side."""
        dlat = math.degrees(margin_m / EARTH_RADIUS_M)
        mid = math.radians((self.south + self.north) / 2.0)
        dlon = math.degrees(margin_m / (EARTH_RADIUS_M * math.cos(mid)))
        return BoundingBox(
            self.south - dlat,
            self.west - dlon,
            self.north + dlat,
            self.east + dlon,
        )

    def to_polygon(self) -> "Polygon":
        return Polygon(list(self.corners))


@dataclass(frozen=True)
class Polygon:
    """A simple (non-self-intersecting) polygon of lat/lon vertices.

    Vertices may be listed in either winding order; the closing edge back
    to the first vertex is implicit.
    """

    vertices: Sequence[LatLon]
    _bbox: BoundingBox = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.vertices) < 3:
            raise ValueError("a polygon needs at least 3 vertices")
        object.__setattr__(self, "vertices", tuple(self.vertices))
        object.__setattr__(self, "_bbox", BoundingBox.around(self.vertices))

    @property
    def bounding_box(self) -> BoundingBox:
        return self._bbox

    def contains(self, p: LatLon) -> bool:
        """Ray-cast point-in-polygon test.

        Points exactly on an edge may land on either side; surge-area
        layouts are built with small gaps between polygons so this never
        matters in practice.
        """
        if not self._bbox.contains(p):
            return False
        inside = False
        verts = self.vertices
        j = len(verts) - 1
        for i in range(len(verts)):
            vi, vj = verts[i], verts[j]
            if (vi.lat > p.lat) != (vj.lat > p.lat):
                x_cross = vi.lon + (p.lat - vi.lat) / (vj.lat - vi.lat) * (
                    vj.lon - vi.lon
                )
                if p.lon < x_cross:
                    inside = not inside
            j = i
        return inside

    def signed_area_deg2(self) -> float:
        """Shoelace area in squared degrees (sign encodes winding)."""
        total = 0.0
        verts = self.vertices
        for i, v in enumerate(verts):
            w = verts[(i + 1) % len(verts)]
            total += v.lon * w.lat - w.lon * v.lat
        return total / 2.0

    def area_m2(self) -> float:
        """Approximate area in square metres (local flat-plane metric)."""
        mid = math.radians(
            (self._bbox.south + self._bbox.north) / 2.0
        )
        deg = math.radians(1.0) * EARTH_RADIUS_M
        return abs(self.signed_area_deg2()) * deg * deg * math.cos(mid)

    def centroid(self) -> LatLon:
        """Area-weighted centroid (falls back to vertex mean if degenerate)."""
        a = self.signed_area_deg2()
        if abs(a) < 1e-15:
            return LatLon(
                sum(v.lat for v in self.vertices) / len(self.vertices),
                sum(v.lon for v in self.vertices) / len(self.vertices),
            )
        cx = cy = 0.0
        verts = self.vertices
        for i, v in enumerate(verts):
            w = verts[(i + 1) % len(verts)]
            cross = v.lon * w.lat - w.lon * v.lat
            cx += (v.lon + w.lon) * cross
            cy += (v.lat + w.lat) * cross
        return LatLon(cy / (6.0 * a), cx / (6.0 * a))

    def edges(self) -> List[Tuple[LatLon, LatLon]]:
        verts = self.vertices
        return [
            (verts[i], verts[(i + 1) % len(verts)]) for i in range(len(verts))
        ]

    def closest_boundary_point(self, p: LatLon) -> LatLon:
        """The boundary point nearest to *p* (flat-plane metric).

        The avoidance strategy (§6) walks users to the nearest point of
        an adjacent surge area; this provides that point.
        """
        mid = math.radians((self._bbox.south + self._bbox.north) / 2.0)
        kx = math.radians(1.0) * EARTH_RADIUS_M * math.cos(mid)
        ky = math.radians(1.0) * EARTH_RADIUS_M
        px, py = p.lon * kx, p.lat * ky
        best = None
        best_d = float("inf")
        for a, b in self.edges():
            ax, ay = a.lon * kx, a.lat * ky
            bx, by = b.lon * kx, b.lat * ky
            dx, dy = bx - ax, by - ay
            length2 = dx * dx + dy * dy
            if length2 == 0.0:
                t = 0.0
            else:
                t = max(0.0, min(1.0, ((px - ax) * dx + (py - ay) * dy)
                                 / length2))
            cx, cy = ax + t * dx, ay + t * dy
            d = planar_distance(px - cx, py - cy)
            if d < best_d:
                best_d = d
                best = LatLon(cy / ky, cx / kx)
        assert best is not None
        return best

    def distance_to_boundary_m(self, p: LatLon) -> float:
        """Distance from *p* to the nearest boundary edge, in metres.

        Used by the death-detection edge filter: cars that vanish close
        to the measurement boundary may simply have driven out, so they
        are not counted as fulfilled demand (§3.3 restriction 2).
        """
        mid = math.radians((self._bbox.south + self._bbox.north) / 2.0)
        kx = math.radians(1.0) * EARTH_RADIUS_M * math.cos(mid)
        ky = math.radians(1.0) * EARTH_RADIUS_M
        px, py = p.lon * kx, p.lat * ky
        best = float("inf")
        for a, b in self.edges():
            ax, ay = a.lon * kx, a.lat * ky
            bx, by = b.lon * kx, b.lat * ky
            dx, dy = bx - ax, by - ay
            length2 = dx * dx + dy * dy
            if length2 == 0.0:
                t = 0.0
            else:
                t = max(0.0, min(1.0, ((px - ax) * dx + (py - ay) * dy)
                                 / length2))
            cx, cy = ax + t * dx, ay + t * dy
            best = min(best, planar_distance(px - cx, py - cy))
        return best
