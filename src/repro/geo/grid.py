"""Measurement-grid construction.

The paper places 43 emulated clients so that circles of the calibrated
visibility radius tile the measurement region (§3.4, Fig 3).  Two packings
are provided:

* :func:`grid_cover` — square packing with spacing ``2r/sqrt(2)`` so the
  circles' inscribed squares tile the plane with no gaps, which is what the
  paper's Fig 3 layouts resemble;
* :func:`hex_grid_cover` — hexagonal packing, the densest circle cover,
  used by the ablation benches to quantify how many clients each scheme
  needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.geo.latlon import LatLon
from repro.geo.polygon import Polygon


@dataclass(frozen=True)
class GridSpec:
    """Parameters of a constructed measurement grid."""

    region: Polygon
    radius_m: float
    spacing_m: float
    points: Tuple[LatLon, ...]

    @property
    def client_count(self) -> int:
        return len(self.points)


def _cover(
    region: Polygon,
    radius_m: float,
    spacing_m: float,
    row_offset_fraction: float,
    row_spacing_m: float,
    include_margin: bool = True,
) -> GridSpec:
    """Lay a lattice of clients over *region*.

    With ``include_margin`` (the default), lattice points *outside* the
    region are kept whenever their visibility disc still overlaps it —
    this preserves the lattice's full-plane coverage guarantee at the
    region boundary.  Without it, only interior points are kept (the
    paper's economical placement; coverage dips slightly at the edges).
    """
    if radius_m <= 0:
        raise ValueError("radius must be positive")
    box = region.bounding_box
    origin = LatLon(box.south, box.west)
    height = box.height_m()
    width = box.width_m()
    points: List[LatLon] = []
    row = 0
    north = -row_spacing_m if include_margin else 0.0
    east_start_base = -spacing_m if include_margin else 0.0
    while north <= height + row_spacing_m:
        east = east_start_base + (
            (row % 2) * row_offset_fraction * spacing_m
        )
        while east <= width + spacing_m:
            candidate = origin.offset(north_m=north, east_m=east)
            if region.contains(candidate):
                points.append(candidate)
            elif (
                include_margin
                and region.distance_to_boundary_m(candidate) <= radius_m
            ):
                points.append(candidate)
            east += spacing_m
        north += row_spacing_m
        row += 1
    return GridSpec(
        region=region,
        radius_m=radius_m,
        spacing_m=spacing_m,
        points=tuple(points),
    )


def grid_cover(region: Polygon, radius_m: float) -> GridSpec:
    """Square-packed client grid covering *region*.

    Spacing is ``r * sqrt(2)`` so that every point of the plane is within
    *radius_m* of some client (adjacent circles overlap on their inscribed
    squares).
    """
    spacing = radius_m * math.sqrt(2.0)
    return _cover(
        region,
        radius_m,
        spacing_m=spacing,
        row_offset_fraction=0.0,
        row_spacing_m=spacing,
    )


def hex_grid_cover(region: Polygon, radius_m: float) -> GridSpec:
    """Hexagonally packed client grid covering *region*.

    The optimal covering lattice: spacing ``r * sqrt(3)`` within a row,
    rows ``1.5 r`` apart, odd rows offset by half a spacing.
    """
    spacing = radius_m * math.sqrt(3.0)
    return _cover(
        region,
        radius_m,
        spacing_m=spacing,
        row_offset_fraction=0.5,
        row_spacing_m=1.5 * radius_m,
    )


def coverage_fraction(
    spec: GridSpec, samples_per_axis: int = 40
) -> float:
    """Fraction of region sample points within radius of some client.

    A Monte-Carlo-free estimate on a regular lattice of
    ``samples_per_axis**2`` candidate points clipped to the region; used by
    tests and the placement ablation bench.
    """
    box = spec.region.bounding_box
    height = box.height_m()
    width = box.width_m()
    origin = LatLon(box.south, box.west)
    inside = 0
    covered = 0
    for i in range(samples_per_axis):
        for j in range(samples_per_axis):
            p = origin.offset(
                north_m=height * (i + 0.5) / samples_per_axis,
                east_m=width * (j + 0.5) / samples_per_axis,
            )
            if not spec.region.contains(p):
                continue
            inside += 1
            if any(
                p.fast_distance_m(c) <= spec.radius_m for c in spec.points
            ):
                covered += 1
    if inside == 0:
        raise ValueError("no sample points fell inside the region")
    return covered / inside
