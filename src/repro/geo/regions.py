"""City models for the two measurement regions.

The paper studies downtown San Francisco and midtown Manhattan.  Each
:class:`CityRegion` bundles the geography the rest of the system needs:

* the measurement boundary polygon (what the 43 clients must cover),
* the ground-truth *surge areas* — Uber divides cities into manually drawn
  polygons with independent surge multipliers (§5.3, Figs 18-19).  The
  simulator prices per-area; the audit pipeline must *re-discover* the
  partition from observed multiplier time series without access to it,
* demand hotspots (Times Square / 5th Avenue in Manhattan; Russian Hill,
  the Embarcadero, the Financial District, and UCSF in SF — §4.3),
* the calibrated client visibility radius the paper settled on (200 m in
  Manhattan, 350 m in SF — §3.4).

Coordinates approximate the real neighbourhoods but only their *relative*
geometry matters: area sizes (SF areas are larger), hotspot placement, and
adjacency drive every reproduced result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geo.latlon import LatLon
from repro.geo.polygon import BoundingBox, Polygon


@dataclass(frozen=True)
class SurgeAreaDef:
    """Ground-truth definition of one surge area."""

    area_id: int
    name: str
    polygon: Polygon

    def contains(self, p: LatLon) -> bool:
        return self.polygon.contains(p)


@dataclass(frozen=True)
class Hotspot:
    """A demand attractor: rides originate near hotspots preferentially."""

    name: str
    location: LatLon
    weight: float


@dataclass(frozen=True)
class CityRegion:
    """Geography of one measurement region."""

    name: str
    boundary: Polygon
    surge_areas: Tuple[SurgeAreaDef, ...]
    hotspots: Tuple[Hotspot, ...]
    client_radius_m: float

    def __post_init__(self) -> None:
        ids = [a.area_id for a in self.surge_areas]
        if len(set(ids)) != len(ids):
            raise ValueError("surge area ids must be unique")

    def area_of(self, p: LatLon) -> Optional[SurgeAreaDef]:
        """The surge area containing *p*, or None outside every area."""
        for area in self.surge_areas:
            if area.contains(p):
                return area
        return None

    def area_by_id(self, area_id: int) -> SurgeAreaDef:
        for area in self.surge_areas:
            if area.area_id == area_id:
                return area
        raise KeyError(f"no surge area with id {area_id}")

    @property
    def bounding_box(self) -> BoundingBox:
        return self.boundary.bounding_box

    def adjacency(self) -> Dict[int, List[int]]:
        """Which surge areas border each other.

        Two areas are adjacent when their centroids are within the sum of
        their bounding-circle radii — a robust proxy given the areas
        partition a convex region.  Used by the surge-avoidance strategy
        (§6) to enumerate candidate walk-to areas.
        """
        adj: Dict[int, List[int]] = {a.area_id: [] for a in self.surge_areas}
        infos = []
        for area in self.surge_areas:
            c = area.polygon.centroid()
            r = max(c.fast_distance_m(v) for v in area.polygon.vertices)
            infos.append((area.area_id, c, r))
        for i, (id_a, ca, ra) in enumerate(infos):
            for id_b, cb, rb in infos[i + 1 :]:
                if ca.fast_distance_m(cb) <= ra + rb:
                    adj[id_a].append(id_b)
                    adj[id_b].append(id_a)
        return adj

    def total_hotspot_weight(self) -> float:
        return sum(h.weight for h in self.hotspots)


def _quad_split(
    box: BoundingBox, pivot: LatLon, names: Sequence[str]
) -> List[SurgeAreaDef]:
    """Partition *box* into four quadrant polygons around *pivot*.

    The paper notes surge-area boundaries look hand-drawn; quadrants with
    an off-centre pivot give areas of unequal size with straight internal
    borders, which is all the downstream analysis depends on (lock-step
    multipliers inside an area, different series across borders).
    """
    s, w, n, e = box.south, box.west, box.north, box.east
    quads = [
        Polygon([LatLon(s, w), LatLon(pivot.lat, w),
                 LatLon(pivot.lat, pivot.lon), LatLon(s, pivot.lon)]),
        Polygon([LatLon(pivot.lat, w), LatLon(n, w),
                 LatLon(n, pivot.lon), LatLon(pivot.lat, pivot.lon)]),
        Polygon([LatLon(pivot.lat, pivot.lon), LatLon(n, pivot.lon),
                 LatLon(n, e), LatLon(pivot.lat, e)]),
        Polygon([LatLon(s, pivot.lon), LatLon(pivot.lat, pivot.lon),
                 LatLon(pivot.lat, e), LatLon(s, e)]),
    ]
    return [
        SurgeAreaDef(area_id=i, name=names[i], polygon=poly)
        for i, poly in enumerate(quads)
    ]


def midtown_manhattan() -> CityRegion:
    """Midtown Manhattan measurement region (~2.2 km x 2.8 km).

    Four surge areas split near Bryant Park; Times Square and 5th Avenue
    are the dominant hotspots (Fig 9a).  Client radius 200 m (§3.4).
    """
    box = BoundingBox(south=40.7450, west=-73.9950, north=40.7700,
                      east=-73.9680)
    pivot = LatLon(40.7572, -73.9843)  # by Times Square: area borders
    # cross at the hotspot, as in the paper's Fig 18 map
    areas = _quad_split(
        box, pivot,
        names=("Murray Hill", "Times Square West", "Grand Central North",
               "Herald Square"),
    )
    hotspots = (
        Hotspot("Times Square", LatLon(40.7580, -73.9855), weight=3.0),
        Hotspot("5th Avenue", LatLon(40.7545, -73.9800), weight=2.0),
        Hotspot("Grand Central", LatLon(40.7527, -73.9772), weight=1.5),
        Hotspot("Herald Square", LatLon(40.7484, -73.9878), weight=1.0),
    )
    return CityRegion(
        name="midtown_manhattan",
        boundary=box.to_polygon(),
        surge_areas=tuple(areas),
        hotspots=hotspots,
        client_radius_m=200.0,
    )


def downtown_sf() -> CityRegion:
    """Downtown San Francisco measurement region (~3.5 km x 3.5 km).

    Larger than midtown, with correspondingly larger surge areas — the
    paper notes SF areas are bigger and more correlated, which is why the
    walk-to-adjacent-area strategy rarely pays off there (§6).  Client
    radius 350 m (§3.4).
    """
    box = BoundingBox(south=37.7740, west=-122.4290, north=37.8060,
                      east=-122.3900)
    pivot = LatLon(37.7920, -122.4070)  # near Nob Hill
    areas = _quad_split(
        box, pivot,
        names=("SoMa", "Russian Hill", "Financial District", "Union Square"),
    )
    # Demand is spread across the quadrants: the paper finds SF's surge
    # areas highly correlated ("it's rare for one area in downtown SF to
    # have significantly higher surge than all the others", §6), which
    # requires no single area to dominate demand.
    hotspots = (
        Hotspot("Financial District", LatLon(37.7946, -122.3999), weight=2.0),
        Hotspot("Embarcadero", LatLon(37.7993, -122.3977), weight=1.2),
        Hotspot("Russian Hill", LatLon(37.8010, -122.4180), weight=2.0),
        Hotspot("Union Square", LatLon(37.7880, -122.4074), weight=2.0),
        Hotspot("UCSF Mission Bay", LatLon(37.7765, -122.3930), weight=1.5),
    )
    return CityRegion(
        name="downtown_sf",
        boundary=box.to_polygon(),
        surge_areas=tuple(areas),
        hotspots=hotspots,
        client_radius_m=350.0,
    )
