"""Geographic substrate: coordinates, distances, polygons, and grids.

Every other subsystem (the marketplace simulator, the taxi replayer, the
measurement fleet, and the surge-area discovery pipeline) speaks in
latitude/longitude pairs.  This package provides the small amount of
spherical geometry the paper relies on:

* great-circle and fast equirectangular distances (:mod:`repro.geo.latlon`),
* point-in-polygon tests for surge areas (:mod:`repro.geo.polygon`),
* measurement-grid generation (:mod:`repro.geo.grid`),
* the two city models used throughout the study (:mod:`repro.geo.regions`).
"""

from repro.geo.latlon import (
    EARTH_RADIUS_M,
    WALKING_SPEED_M_PER_MIN,
    LatLon,
    bearing_deg,
    destination,
    equirectangular_m,
    haversine_m,
    walking_minutes,
)
from repro.geo.index import AreaIndex, PointIndex
from repro.geo.polygon import BoundingBox, Polygon
from repro.geo.grid import GridSpec, grid_cover, hex_grid_cover
from repro.geo.regions import (
    CityRegion,
    SurgeAreaDef,
    downtown_sf,
    midtown_manhattan,
)

__all__ = [
    "EARTH_RADIUS_M",
    "WALKING_SPEED_M_PER_MIN",
    "LatLon",
    "bearing_deg",
    "destination",
    "equirectangular_m",
    "haversine_m",
    "walking_minutes",
    "AreaIndex",
    "PointIndex",
    "BoundingBox",
    "Polygon",
    "GridSpec",
    "grid_cover",
    "hex_grid_cover",
    "CityRegion",
    "SurgeAreaDef",
    "downtown_sf",
    "midtown_manhattan",
]
