"""Spatial indexes for the simulator's hot paths.

Every observable the paper measures — nearest-8 car lists, EWT, per-area
surge — funnels through two geometric queries that the seed implemented
as linear scans: *k-nearest idle drivers* (`Dispatcher.nearest_idle`) and
*point → surge area* (`MarketplaceEngine.area_id_of`).  Both run many
times per 5-second tick, so their cost caps campaign length and fleet
size.  This module provides drop-in sublinear replacements:

* :class:`PointIndex` — a uniform-grid bucket index over moving points
  with an expanding-ring k-nearest query.  Results are ordered by
  ``(distance, id)`` with *exactly* the same distance function the brute
  force scan uses, so swapping the index in cannot perturb dispatch
  order, tie-breaking, or any downstream determinism.
* :class:`AreaIndex` — point-in-which-polygon resolution over a
  precomputed cell grid.  Cells that no polygon boundary touches are
  answered with a single table lookup; cells a boundary crosses fall
  back to the exact first-match ray-cast scan, so the answer is always
  identical to the linear scan.

Both indexes are pure reads at query time: they never consume RNG state
and never mutate the objects they store, which is what lets the engine
guarantee identical ``IntervalTruth`` logs with the index on or off.
"""

from __future__ import annotations

import math

import numpy as np
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.geo.latlon import EARTH_RADIUS_M, LatLon, equirectangular_m
from repro.geo.polygon import Polygon

#: Metres of northing per degree of latitude (spherical Earth).
METERS_PER_DEG_LAT = math.radians(1.0) * EARTH_RADIUS_M

#: Ring lower bounds are deflated by this factor before pruning the
#: expanding search.  It absorbs the tiny skew between the bucketing
#: projection (fixed reference latitude) and the true equirectangular
#: metric (per-pair mean latitude); at city scale the skew is < 0.05 %,
#: so 0.5 % of slack is conservative by an order of magnitude.
_RING_SAFETY = 0.995

#: Label of grid cells that a polygon boundary passes through.
_BOUNDARY = object()

#: Populations at or below this size answer k-nearest queries with a
#: direct scan; the expanding-ring walk only pays off once buckets are
#: meaningfully occupied.
_SMALL_SCAN = 48


class PointIndex:
    """Uniform-grid bucket index over moving points.

    Points are keyed by a sortable, hashable id (driver ids here) and
    carry an arbitrary payload (the driver object).  The index supports
    incremental :meth:`move` updates — a moving fleet costs one bucket
    check per driver per tick, not a rebuild.

    Two metrics are supported, matching the two brute-force scans the
    codebase replaces:

    * ``"equirect"`` (default) — distances via
      :func:`repro.geo.latlon.equirectangular_m`, bit-identical to
      ``LatLon.fast_distance_m`` as used by the dispatcher.
    * ``"planar"`` — squared planar distances using fixed metres-per-
      degree scale factors, bit-identical to the taxi replayer's
      vectorized ``dx*dx + dy*dy`` computation (pass ``deg_lat_m`` /
      ``deg_lon_m``; :meth:`nearest_k` then returns *squared* metres).
    """

    def __init__(
        self,
        cell_m: float = 250.0,
        ref_lat: Optional[float] = None,
        metric: str = "equirect",
        deg_lat_m: Optional[float] = None,
        deg_lon_m: Optional[float] = None,
    ) -> None:
        if cell_m <= 0:
            raise ValueError("cell size must be positive")
        if metric not in ("equirect", "planar"):
            raise ValueError(f"unknown metric {metric!r}")
        if metric == "planar" and (deg_lat_m is None or deg_lon_m is None):
            raise ValueError("planar metric needs deg_lat_m and deg_lon_m")
        self.cell_m = cell_m
        self.metric = metric
        if metric == "planar":
            self._ky = float(deg_lat_m)
            self._kx = float(deg_lon_m)
        else:
            self._ky = METERS_PER_DEG_LAT
            self._kx = (
                None
                if ref_lat is None
                else METERS_PER_DEG_LAT * math.cos(math.radians(ref_lat))
            )
        # Cell coordinates are floor(projected / cell_m); the inverse
        # scale folds the division into one multiply on the move path.
        self._inv_x = None if self._kx is None else self._kx / cell_m
        self._inv_y = self._ky / cell_m
        # cell -> {id: entry}, where entry is the *mutable* pair
        # ``[location, payload]``.  A same-cell move (the overwhelmingly
        # common case for a cruising fleet) is then a single list-slot
        # store instead of a tuple rebuild plus two dict writes.
        self._cells: Dict[Tuple[int, int], Dict[Hashable, List[Any]]] = {}
        # id -> [entry, cell]
        self._points: Dict[Hashable, List[Any]] = {}
        # Grow-only bounds of occupied cells; a stale (larger) extent is
        # still a correct stopping bound for the ring search.
        self._min_cx = self._max_cx = 0
        self._min_cy = self._max_cy = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, pid: Hashable) -> bool:
        return pid in self._points

    def location_of(self, pid: Hashable) -> LatLon:
        return self._points[pid][0][0]

    def _cell_of(self, location: LatLon) -> Tuple[int, int]:
        if self._inv_x is None:
            # Lazy reference latitude: first point anchors the grid.
            self._kx = METERS_PER_DEG_LAT * math.cos(
                math.radians(location.lat)
            )
            self._inv_x = self._kx / self.cell_m
        return (
            math.floor(location.lon * self._inv_x),
            math.floor(location.lat * self._inv_y),
        )

    def _grow_bounds(self, cell: Tuple[int, int]) -> None:
        cx, cy = cell
        if len(self._points) == 1:
            self._min_cx = self._max_cx = cx
            self._min_cy = self._max_cy = cy
            return
        if cx < self._min_cx:
            self._min_cx = cx
        elif cx > self._max_cx:
            self._max_cx = cx
        if cy < self._min_cy:
            self._min_cy = cy
        elif cy > self._max_cy:
            self._max_cy = cy

    # ------------------------------------------------------------------
    def insert(self, pid: Hashable, location: LatLon, payload: Any = None) -> None:
        """Add a point; *pid* must not already be present."""
        if pid in self._points:
            raise ValueError(f"id {pid!r} already in index")
        cell = self._cell_of(location)
        entry = [location, payload]
        self._cells.setdefault(cell, {})[pid] = entry
        self._points[pid] = [entry, cell]
        self._grow_bounds(cell)

    def remove(self, pid: Hashable) -> None:
        """Drop a point; raises ``KeyError`` when absent."""
        _, cell = self._points.pop(pid)
        bucket = self._cells[cell]
        del bucket[pid]
        if not bucket:
            del self._cells[cell]

    def move(self, pid: Hashable, location: LatLon) -> None:
        """Update a point's location (cheap when it stays in its cell)."""
        rec = self._points[pid]
        entry, old_cell = rec
        cell = self._cell_of(location)
        if cell == old_cell:
            entry[0] = location
            return
        bucket = self._cells[old_cell]
        del bucket[pid]
        if not bucket:
            del self._cells[old_cell]
        entry[0] = location
        self._cells.setdefault(cell, {})[pid] = entry
        rec[1] = cell
        self._grow_bounds(cell)

    # ------------------------------------------------------------------
    def _distance(self, query: LatLon, point: LatLon) -> float:
        if self.metric == "planar":
            dy = (point.lat - query.lat) * self._ky
            dx = (point.lon - query.lon) * self._kx
            return dx * dx + dy * dy
        return equirectangular_m(point, query)

    def nearest_k(
        self,
        location: LatLon,
        k: int,
        predicate: Optional[Callable[[Any], bool]] = None,
    ) -> List[Tuple[float, Hashable, Any]]:
        """The *k* nearest points, as ``(distance, id, payload)`` tuples.

        Ordered by ``(distance, id)`` — the exact tie-break the brute
        force ``sort(key=(distance, driver_id))`` applies, so replacing
        a linear scan with this query is behaviour-preserving.  With a
        *predicate*, only points whose payload satisfies it are
        considered (e.g. ``Driver.is_dispatchable``).

        Under the ``"planar"`` metric the first tuple element is the
        *squared* distance in metres², matching the replayer's
        ``dist2`` arrays bit-for-bit.
        """
        if k <= 0 or not self._points:
            return []
        n = len(self._points)
        # Bind the metric locally; ids are unique, so plain tuple sort
        # orders by (distance, id) and never reaches the payload.
        planar = self.metric == "planar"
        qlat = location.lat
        qlon = location.lon
        rad = math.radians
        cos = math.cos
        sqrt = math.sqrt
        if planar:
            ky = self._ky
            kx = self._kx
        if n <= _SMALL_SCAN or n <= k:
            # Sparse populations (rare car types): a direct scan beats
            # walking rings of mostly-empty buckets.
            found = []
            for pid, ((ploc, payload), _) in self._points.items():
                if predicate is not None and not predicate(payload):
                    continue
                if planar:
                    dy = (ploc.lat - qlat) * ky
                    dx = (ploc.lon - qlon) * kx
                    d = dx * dx + dy * dy
                else:
                    x = rad(qlon - ploc.lon) * cos(
                        rad((ploc.lat + qlat) / 2.0)
                    )
                    y = rad(qlat - ploc.lat)
                    d = EARTH_RADIUS_M * sqrt(x * x + y * y)
                found.append((d, pid, payload))
            found.sort()
            return found[:k]
        cx, cy = self._cell_of(location)
        min_cx, max_cx = self._min_cx, self._max_cx
        min_cy, max_cy = self._min_cy, self._max_cy
        r_max = max(
            abs(cx - min_cx),
            abs(cx - max_cx),
            abs(cy - min_cy),
            abs(cy - max_cy),
        )
        found = []
        examined = 0
        cells_get = self._cells.get
        buckets: List[Dict[Hashable, List[Any]]] = []
        for r in range(r_max + 1):
            if len(found) >= k:
                # Every point in ring r is at least (r-1) whole cells
                # away; once the kth best beats that bound no farther
                # ring can improve the answer (or its tie-break).
                bound = (r - 1) * self.cell_m * _RING_SAFETY
                if planar:
                    bound *= bound
                found.sort()
                if found[k - 1][0] < bound:
                    break
            # Gather ring r's occupied buckets, clamped to the occupied
            # cell bounds so edge-of-city queries skip empty space.
            del buckets[:]
            ap = buckets.append
            if r == 0:
                b = cells_get((cx, cy))
                if b:
                    ap(b)
            else:
                xlo = cx - r
                xhi = cx + r
                lo = xlo if xlo > min_cx else min_cx
                hi = xhi if xhi < max_cx else max_cx
                y = cy - r
                if y >= min_cy:
                    for x in range(lo, hi + 1):
                        b = cells_get((x, y))
                        if b:
                            ap(b)
                y = cy + r
                if y <= max_cy:
                    for x in range(lo, hi + 1):
                        b = cells_get((x, y))
                        if b:
                            ap(b)
                ylo = cy - r + 1
                yhi = cy + r - 1
                if ylo < min_cy:
                    ylo = min_cy
                if yhi > max_cy:
                    yhi = max_cy
                if xlo >= min_cx:
                    for y in range(ylo, yhi + 1):
                        b = cells_get((xlo, y))
                        if b:
                            ap(b)
                if xhi <= max_cx:
                    for y in range(ylo, yhi + 1):
                        b = cells_get((xhi, y))
                        if b:
                            ap(b)
            for bucket in buckets:
                examined += len(bucket)
                for pid, (ploc, payload) in bucket.items():
                    if predicate is not None and not predicate(payload):
                        continue
                    if planar:
                        dy = (ploc.lat - qlat) * ky
                        dx = (ploc.lon - qlon) * kx
                        d = dx * dx + dy * dy
                    else:
                        # Inlined equirectangular_m(ploc, location):
                        # identical operations, identical floats.
                        x = rad(qlon - ploc.lon) * cos(
                            rad((ploc.lat + qlat) / 2.0)
                        )
                        y = rad(qlat - ploc.lat)
                        d = EARTH_RADIUS_M * sqrt(x * x + y * y)
                    found.append((d, pid, payload))
            if examined >= n:
                # Every indexed point has been visited; no farther ring
                # can contribute anything.
                break
        found.sort()
        return found[:k]


# ----------------------------------------------------------------------
# Point -> area resolution
# ----------------------------------------------------------------------
def _segment_hits_rect(
    ax: float, ay: float, bx: float, by: float,
    x0: float, y0: float, x1: float, y1: float,
) -> bool:
    """Whether segment a-b intersects (or touches) the closed rectangle.

    Liang-Barsky clipping with inclusive comparisons: a segment that
    merely grazes the rectangle counts as a hit, which errs on the side
    of classifying cells as boundary cells — the always-correct side.
    """
    if (
        max(ax, bx) < x0 or min(ax, bx) > x1
        or max(ay, by) < y0 or min(ay, by) > y1
    ):
        return False
    dx = bx - ax
    dy = by - ay
    t0, t1 = 0.0, 1.0
    for p, q in (
        (-dx, ax - x0), (dx, x1 - ax), (-dy, ay - y0), (dy, y1 - ay)
    ):
        if p == 0.0:
            if q < 0.0:
                return False
        else:
            t = q / p
            if p < 0.0:
                if t > t1:
                    return False
                if t > t0:
                    t0 = t
            else:
                if t < t0:
                    return False
                if t < t1:
                    t1 = t
    return True


class AreaIndex:
    """Point → area lookup over a precomputed uniform cell grid.

    Built once from an ordered sequence of ``(key, polygon)`` pairs.
    Each grid cell is classified at construction time:

    * **pure** — no polygon edge passes through the cell, so every point
      in it has the same first-match answer; stored as that key (or
      ``None`` when outside every polygon) and answered with one lookup;
    * **boundary** — some polygon edge crosses the cell; queries fall
      back to the exact ray-cast scan *in the same first-match order*
      the brute force loop uses.

    :meth:`locate` is therefore exactly equivalent to iterating the
    polygons and returning the first containing one — just much faster
    away from borders, which is where virtually all queries land.
    """

    def __init__(
        self,
        areas: Sequence[Tuple[Hashable, Polygon]],
        cell_m: float = 75.0,
        max_cells: int = 250_000,
    ) -> None:
        if cell_m <= 0:
            raise ValueError("cell size must be positive")
        self._areas: List[Tuple[Hashable, Polygon]] = list(areas)
        self._labels: List[Any] = []
        self._label_codes: Optional[np.ndarray] = None
        self._nx = self._ny = 0
        self.boundary_cells = 0
        if not self._areas:
            return
        south = min(p.bounding_box.south for _, p in self._areas)
        west = min(p.bounding_box.west for _, p in self._areas)
        north = max(p.bounding_box.north for _, p in self._areas)
        east = max(p.bounding_box.east for _, p in self._areas)
        self._lat0, self._lon0 = south, west
        self._lat1, self._lon1 = north, east
        mid = math.radians((south + north) / 2.0)
        width_m = math.radians(east - west) * EARTH_RADIUS_M * math.cos(mid)
        height_m = math.radians(north - south) * EARTH_RADIUS_M
        nx = max(1, int(math.ceil(width_m / cell_m)))
        ny = max(1, int(math.ceil(height_m / cell_m)))
        while nx * ny > max_cells:
            nx = max(1, nx // 2)
            ny = max(1, ny // 2)
        self._nx, self._ny = nx, ny
        self._dlon = (east - west) / nx or 1.0
        self._dlat = (north - south) / ny or 1.0
        self._classify()

    def _classify(self) -> None:
        labels: List[Any] = []
        for iy in range(self._ny):
            lat_lo = self._lat0 + iy * self._dlat
            lat_hi = lat_lo + self._dlat
            for ix in range(self._nx):
                lon_lo = self._lon0 + ix * self._dlon
                lon_hi = lon_lo + self._dlon
                labels.append(
                    self._classify_cell(lon_lo, lat_lo, lon_hi, lat_hi)
                )
        self._labels = labels
        self.boundary_cells = sum(1 for v in labels if v is _BOUNDARY)

    def _classify_cell(
        self, x0: float, y0: float, x1: float, y1: float
    ) -> Any:
        for _, poly in self._areas:
            bb = poly.bounding_box
            if bb.east < x0 or bb.west > x1 or bb.north < y0 or bb.south > y1:
                continue
            verts = poly.vertices
            j = len(verts) - 1
            for i in range(len(verts)):
                a, b = verts[j], verts[i]
                if _segment_hits_rect(
                    a.lon, a.lat, b.lon, b.lat, x0, y0, x1, y1
                ):
                    return _BOUNDARY
                j = i
        # No boundary inside the closed cell: containment is constant
        # across it, so the centre speaks for every point.
        centre = LatLon((y0 + y1) / 2.0, (x0 + x1) / 2.0)
        for key, poly in self._areas:
            if poly.contains(centre):
                return key
        return None

    # ------------------------------------------------------------------
    @property
    def cell_count(self) -> int:
        return self._nx * self._ny

    def locate(self, p: LatLon) -> Optional[Hashable]:
        """First-match area key containing *p*, or ``None``.

        Exactly equivalent to scanning the ``(key, polygon)`` pairs in
        order and returning the first whose polygon contains *p*.
        """
        if not self._areas:
            return None
        if not (
            self._lat0 <= p.lat <= self._lat1
            and self._lon0 <= p.lon <= self._lon1
        ):
            return None
        ix = min(self._nx - 1, int((p.lon - self._lon0) / self._dlon))
        iy = min(self._ny - 1, int((p.lat - self._lat0) / self._dlat))
        label = self._labels[iy * self._nx + ix]
        if label is _BOUNDARY:
            for key, poly in self._areas:
                if poly.contains(p):
                    return key
            return None
        return label

    # ------------------------------------------------------------------
    @property
    def area_keys(self) -> Tuple[Hashable, ...]:
        """The area keys in first-match order; codes index into this."""
        return tuple(key for key, _ in self._areas)

    def _build_label_codes(self) -> np.ndarray:
        first: Dict[Hashable, int] = {}
        for ci, (key, _) in enumerate(self._areas):
            first.setdefault(key, ci)
        codes = np.fromiter(
            (
                -2 if label is _BOUNDARY
                else (-1 if label is None else first[label])
                for label in self._labels
            ),
            dtype=np.int64,
            count=len(self._labels),
        )
        self._label_codes = codes
        return codes

    def locate_codes(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`locate` over parallel coordinate arrays.

        Returns an int64 array of the same length: ``code >= 0`` indexes
        :attr:`area_keys` (the first-match containing area), ``-1`` means
        no area contains the point.  Pure cells are answered by one
        vectorized table gather; points in boundary cells fall back to
        the exact per-point ray-cast scan, so every element equals what
        :meth:`locate` would return for that point.
        """
        m = len(lats)
        codes = np.full(m, -1, dtype=np.int64)
        if not self._areas or m == 0:
            return codes
        label_codes = self._label_codes
        if label_codes is None:
            label_codes = self._build_label_codes()
        inb = np.nonzero(
            (self._lat0 <= lats) & (lats <= self._lat1)
            & (self._lon0 <= lons) & (lons <= self._lon1)
        )[0]
        if inb.size:
            # int() truncates toward zero exactly like .astype(int64)
            # for the non-negative in-bounds offsets here.
            ix = ((lons[inb] - self._lon0) / self._dlon).astype(np.int64)
            np.minimum(ix, self._nx - 1, out=ix)
            iy = ((lats[inb] - self._lat0) / self._dlat).astype(np.int64)
            np.minimum(iy, self._ny - 1, out=iy)
            codes[inb] = label_codes[iy * self._nx + ix]
        for i in np.nonzero(codes == -2)[0]:
            p = LatLon(float(lats[i]), float(lons[i]))
            codes[i] = -1
            for ci, (_, poly) in enumerate(self._areas):
                if poly.contains(p):
                    codes[i] = ci
                    break
        return codes

    def locate_batch(
        self, lats: np.ndarray, lons: np.ndarray
    ) -> List[Optional[Hashable]]:
        """Batch :meth:`locate`: the area key (or ``None``) per point."""
        keys = self.area_keys
        return [
            keys[c] if c >= 0 else None
            for c in self.locate_codes(lats, lons)
        ]
