"""Latitude/longitude primitives.

The study never needs survey-grade geodesy: measurement grids span a few
kilometres and the paper itself approximates walking speed as a constant
83 m/min (5 km/h).  We therefore provide two distance functions:

* :func:`haversine_m` — exact great-circle distance on a spherical Earth,
  used wherever correctness matters more than speed (calibration, walking
  times).
* :func:`equirectangular_m` — a flat-Earth approximation that is accurate to
  well under 0.1 % at city scale and several times faster; the simulator's
  inner matching loop uses it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Mean Earth radius in metres (IUGG).
EARTH_RADIUS_M = 6_371_008.8

#: Walking speed assumed by the paper in §6: 5 km/h = 83 m/min.
WALKING_SPEED_M_PER_MIN = 83.0


@dataclass(frozen=True, order=True)
class LatLon:
    """A geographic coordinate in decimal degrees.

    Instances are immutable and hashable so they can key dictionaries of
    measurement clients and serve as set members in area-discovery code.
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat!r}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon!r}")

    def distance_m(self, other: "LatLon") -> float:
        """Great-circle distance to *other* in metres."""
        return haversine_m(self, other)

    def fast_distance_m(self, other: "LatLon") -> float:
        """Equirectangular distance to *other* in metres (city-scale)."""
        return equirectangular_m(self, other)

    def offset(self, north_m: float, east_m: float) -> "LatLon":
        """Return the point displaced by metres north and east of here.

        Uses the local-tangent-plane approximation, which is exact enough
        for the sub-kilometre offsets used in grid construction.
        """
        dlat = math.degrees(north_m / EARTH_RADIUS_M)
        dlon = math.degrees(
            east_m / (EARTH_RADIUS_M * math.cos(math.radians(self.lat)))
        )
        return LatLon(self.lat + dlat, self.lon + dlon)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.lat:.6f}, {self.lon:.6f})"


def haversine_m(a: LatLon, b: LatLon) -> float:
    """Great-circle distance between two points, in metres."""
    phi1 = math.radians(a.lat)
    phi2 = math.radians(b.lat)
    dphi = math.radians(b.lat - a.lat)
    dlam = math.radians(b.lon - a.lon)
    h = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(h)))


def planar_distance(dx: float, dy: float) -> float:
    """Euclidean norm in sqrt form: the one bit-identical formulation.

    ``sqrt(dx*dx + dy*dy)`` rather than ``hypot(dx, dy)``: the two differ
    by at most one ulp, but only the former is reproduced bit-for-bit by
    numpy's vectorized ops (``np.sqrt(x*x + y*y)``), and the engine's
    array stepping path must produce the exact floats the scalar
    reference does.  *Every* planar distance in the geometry code funnels
    through this helper so the scalar and array paths can never drift —
    the REP004 lint rule rejects ``math.hypot`` for the same reason.
    Over/underflow is irrelevant at city scale (inputs are well within
    float range).
    """
    return math.sqrt(dx * dx + dy * dy)


def equirectangular_m(a: LatLon, b: LatLon) -> float:
    """Fast flat-Earth distance between two nearby points, in metres.

    Error relative to :func:`haversine_m` is below 0.1 % for separations
    under ~50 km at mid latitudes, far beyond any measurement region in
    this study.
    """
    x = math.radians(b.lon - a.lon) * math.cos(
        math.radians((a.lat + b.lat) / 2.0)
    )
    y = math.radians(b.lat - a.lat)
    return EARTH_RADIUS_M * planar_distance(x, y)


def bearing_deg(a: LatLon, b: LatLon) -> float:
    """Initial bearing from *a* to *b* in degrees clockwise from north."""
    phi1 = math.radians(a.lat)
    phi2 = math.radians(b.lat)
    dlam = math.radians(b.lon - a.lon)
    y = math.sin(dlam) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(
        phi2
    ) * math.cos(dlam)
    return math.degrees(math.atan2(y, x)) % 360.0


def destination(start: LatLon, bearing: float, distance_m: float) -> LatLon:
    """Point reached travelling *distance_m* from *start* at *bearing*.

    *bearing* is in degrees clockwise from north.  Great-circle formula,
    so it composes correctly with :func:`haversine_m`.
    """
    delta = distance_m / EARTH_RADIUS_M
    theta = math.radians(bearing)
    phi1 = math.radians(start.lat)
    lam1 = math.radians(start.lon)
    phi2 = math.asin(
        math.sin(phi1) * math.cos(delta)
        + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    )
    lam2 = lam1 + math.atan2(
        math.sin(theta) * math.sin(delta) * math.cos(phi1),
        math.cos(delta) - math.sin(phi1) * math.sin(phi2),
    )
    lon = math.degrees(lam2)
    # Normalize to [-180, 180] so LatLon validation accepts the result.
    lon = (lon + 540.0) % 360.0 - 180.0
    return LatLon(math.degrees(phi2), lon)


def walking_minutes(a: LatLon, b: LatLon) -> float:
    """Walking time between two points at the paper's assumed 83 m/min."""
    return haversine_m(a, b) / WALKING_SPEED_M_PER_MIN


def interpolate(a: LatLon, b: LatLon, fraction: float) -> LatLon:
    """Linear interpolation between two nearby points.

    Used by the trip-execution and taxi-replay code to "drive" vehicles in
    a straight line, exactly as the paper's validation simulator does
    (§3.5: "the simulator drives each taxi in a straight line from
    point-to-point").
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1]: {fraction!r}")
    return LatLon(
        a.lat + (b.lat - a.lat) * fraction,
        a.lon + (b.lon - a.lon) * fraction,
    )
