"""Unicode/ASCII chart rendering.

Charts are rendered onto a character canvas with axes, tick labels, and
a legend.  Multiple series are distinguished by glyph.  Everything
returns a string, so callers compose output freely (bench tables,
reports, terminals).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

#: Glyphs assigned to series, in order.
SERIES_GLYPHS = "*o+x#@%&"

#: Eight-level vertical resolution for sparklines.
_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def _nice_ticks(lo: float, hi: float, count: int) -> List[float]:
    """Roughly *count* round-numbered ticks covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw_step = span / max(count - 1, 1)
    magnitude = 10.0 ** math.floor(math.log10(raw_step))
    for multiple in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = multiple * magnitude
        if step >= raw_step:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    value = first
    while value <= hi + 1e-9:
        ticks.append(round(value, 10))
        value += step
    return ticks or [lo, hi]


def _format_tick(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"


class _Canvas:
    """A character grid with plot-area coordinate mapping."""

    def __init__(
        self,
        width: int,
        height: int,
        x_range: Tuple[float, float],
        y_range: Tuple[float, float],
    ) -> None:
        self.width = max(16, width)
        self.height = max(5, height)
        self.x_lo, self.x_hi = x_range
        self.y_lo, self.y_hi = y_range
        if self.x_hi <= self.x_lo:
            self.x_hi = self.x_lo + 1.0
        if self.y_hi <= self.y_lo:
            self.y_hi = self.y_lo + 1.0
        self.cells = [
            [" "] * self.width for _ in range(self.height)
        ]

    def col_of(self, x: float) -> Optional[int]:
        frac = (x - self.x_lo) / (self.x_hi - self.x_lo)
        col = int(round(frac * (self.width - 1)))
        return col if 0 <= col < self.width else None

    def row_of(self, y: float) -> Optional[int]:
        frac = (y - self.y_lo) / (self.y_hi - self.y_lo)
        row = (self.height - 1) - int(round(frac * (self.height - 1)))
        return row if 0 <= row < self.height else None

    def put(self, x: float, y: float, glyph: str) -> None:
        col = self.col_of(x)
        row = self.row_of(y)
        if col is not None and row is not None:
            self.cells[row][col] = glyph

    def vertical_run(self, x: float, y0: float, y1: float,
                     glyph: str) -> None:
        """Fill cells between two y values at one x (step connector)."""
        col = self.col_of(x)
        if col is None:
            return
        r0 = self.row_of(max(min(y0, self.y_hi), self.y_lo))
        r1 = self.row_of(max(min(y1, self.y_hi), self.y_lo))
        if r0 is None or r1 is None:
            return
        for row in range(min(r0, r1), max(r0, r1) + 1):
            if self.cells[row][col] == " ":
                self.cells[row][col] = glyph

    def render(
        self,
        title: str,
        x_label: str,
        y_label: str,
        legend: Sequence[Tuple[str, str]],
    ) -> str:
        y_ticks = _nice_ticks(self.y_lo, self.y_hi, 5)
        label_width = max(
            (len(_format_tick(t)) for t in y_ticks), default=1
        )
        lines = []
        if title:
            lines.append(title)
        if legend and len(legend) > 1:
            lines.append(
                "  ".join(f"{glyph}={name}" for name, glyph in legend)
            )
        tick_rows = {}
        for tick in y_ticks:
            row = self.row_of(tick)
            if row is not None:
                tick_rows[row] = _format_tick(tick)
        for row in range(self.height):
            label = tick_rows.get(row, "")
            lines.append(
                f"{label:>{label_width}} |" + "".join(self.cells[row])
            )
        lines.append(" " * label_width + " +" + "-" * self.width)
        x_ticks = _nice_ticks(self.x_lo, self.x_hi, 5)
        axis = [" "] * self.width
        for tick in x_ticks:
            col = self.col_of(tick)
            if col is None:
                continue
            text = _format_tick(tick)
            start = min(max(0, col - len(text) // 2),
                        self.width - len(text))
            for i, ch in enumerate(text):
                axis[start + i] = ch
        lines.append(" " * label_width + "  " + "".join(axis))
        if x_label or y_label:
            lines.append(
                " " * label_width
                + f"  x: {x_label}" + (f"   y: {y_label}" if y_label else "")
            )
        return "\n".join(lines)


def _ranges(
    series: Dict[str, Sequence[Tuple[float, float]]],
) -> Tuple[Tuple[float, float], Tuple[float, float]]:
    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    if not xs:
        raise ValueError("cannot plot empty series")
    return (min(xs), max(xs)), (min(ys), max(ys))


def line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    width: int = 72,
    height: int = 16,
    y_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Plot one or more ``(x, y)`` series as a text line chart."""
    x_range, auto_y = _ranges(series)
    canvas = _Canvas(width, height, x_range, y_range or auto_y)
    legend = []
    for idx, (name, points) in enumerate(series.items()):
        glyph = SERIES_GLYPHS[idx % len(SERIES_GLYPHS)]
        legend.append((name, glyph))
        ordered = sorted(points)
        for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
            canvas.vertical_run(x1, y0, y1, glyph)
        for x, y in ordered:
            canvas.put(x, y, glyph)
    return canvas.render(title, x_label, y_label, legend)


def cdf_chart(
    series: Dict[str, Sequence[float]],
    title: str = "",
    x_label: str = "",
    width: int = 72,
    height: int = 14,
) -> str:
    """Plot empirical CDFs (y axis = 0-100 %)."""
    curves = {}
    for name, values in series.items():
        if len(values) == 0:
            raise ValueError(f"series {name!r} is empty")
        ordered = sorted(values)
        n = len(ordered)
        curves[name] = [
            (value, 100.0 * (i + 1) / n)
            for i, value in enumerate(ordered)
        ]
    return line_chart(
        curves, title=title, x_label=x_label, y_label="CDF %",
        width=width, height=height, y_range=(0.0, 100.0),
    )


def bar_chart(
    values: Dict[str, float],
    title: str = "",
    width: int = 50,
    value_format: str = "{:.2f}",
) -> str:
    """Horizontal bars, one per labelled value."""
    if not values:
        raise ValueError("cannot plot no bars")
    peak = max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        filled = int(round(abs(value) / peak * width))
        lines.append(
            f"{name:>{label_width}} |{'#' * filled:<{width}} "
            + value_format.format(value)
        )
    return "\n".join(lines)


def scatter_chart(
    points: Sequence[Tuple[float, float]],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    width: int = 72,
    height: int = 14,
) -> str:
    """Scatter of ``(x, y)`` points (e.g. correlation r vs time shift)."""
    if not points:
        raise ValueError("cannot plot no points")
    return line_chart(
        {"": points}, title=title, x_label=x_label, y_label=y_label,
        width=width, height=height,
    )


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line eight-level summary of a series."""
    if len(values) == 0:
        raise ValueError("cannot sparkline no data")
    values = list(values)
    if len(values) > width:
        # Downsample by averaging buckets.
        bucket = len(values) / width
        values = [
            sum(values[int(i * bucket):int((i + 1) * bucket) or None])
            / max(1, len(values[int(i * bucket):int((i + 1) * bucket)
                               or None]))
            for i in range(width)
        ]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(
        _SPARK_LEVELS[1 + int((v - lo) / span * 7)] for v in values
    )
