"""Shaded spatial grids (the Figs 9-10 / 18-19 renderings).

Client cells are laid out on their true lat/lon lattice and shaded by a
five-level density ramp, with the numeric scale printed below.  For
surge-area maps (discrete labels), cells print the label character
instead of a shade.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.geo.latlon import LatLon

_RAMP = " .:*#@"
_LABELS = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _lattice(
    points: Sequence[LatLon],
) -> Tuple[List[float], List[float]]:
    lats = sorted({p.lat for p in points}, reverse=True)
    lons = sorted({p.lon for p in points})
    return lats, lons


def heatgrid(
    cells: Dict[LatLon, float],
    title: str = "",
    cell_width: int = 3,
) -> str:
    """Render point -> value as a shaded grid (north at top).

    Values map linearly onto a six-level ramp; the legend prints the
    value span of each level.
    """
    if not cells:
        raise ValueError("cannot render an empty grid")
    lats, lons = _lattice(list(cells))
    lo = min(cells.values())
    hi = max(cells.values())
    span = (hi - lo) or 1.0
    lines = [title] if title else []
    for lat in lats:
        row = []
        for lon in lons:
            value = cells.get(LatLon(lat, lon))
            if value is None:
                row.append(" " * cell_width)
                continue
            level = int((value - lo) / span * (len(_RAMP) - 1))
            row.append(_RAMP[level] * cell_width)
        lines.append("".join(row))
    step = span / (len(_RAMP) - 1)
    legend = "  ".join(
        f"'{_RAMP[i]}'<={lo + (i + 0.5) * step:.3g}"
        for i in range(len(_RAMP) - 1)
    ) + f"  '{_RAMP[-1]}'~{hi:.3g}"
    lines.append(f"scale: {legend}")
    return "\n".join(lines)


def labelgrid(
    cells: Dict[LatLon, int],
    title: str = "",
    cell_width: int = 2,
) -> str:
    """Render point -> discrete label as a character grid.

    Used for discovered surge-area maps (Figs 18-19): each area index
    prints its own character, making the partition's geometry visible.
    """
    if not cells:
        raise ValueError("cannot render an empty grid")
    lats, lons = _lattice(list(cells))
    lines = [title] if title else []
    seen = sorted(set(cells.values()))
    for lat in lats:
        row = []
        for lon in lons:
            label = cells.get(LatLon(lat, lon))
            if label is None:
                row.append(" " * cell_width)
            else:
                row.append(
                    _LABELS[label % len(_LABELS)].ljust(cell_width)
                )
        lines.append("".join(row))
    lines.append(
        "areas: " + " ".join(_LABELS[a % len(_LABELS)] for a in seen)
    )
    return "\n".join(lines)
