"""Text-mode plotting for figures, reports, and bench output.

The paper's results are figures; this package renders their equivalents
as plain text so every environment (CI logs, terminals, the bench
`out/` directory) can display them without a graphics stack:

* :func:`repro.viz.plots.line_chart` — multi-series time-series plots
  (Figs 4, 8, 14);
* :func:`repro.viz.plots.cdf_chart` — CDF step plots (Figs 11-13, 16,
  23-24);
* :func:`repro.viz.plots.bar_chart` — grouped bars (Figs 17, 22);
* :func:`repro.viz.plots.scatter_chart` — shift-vs-r stems (Figs 20-21);
* :func:`repro.viz.plots.sparkline` — one-line series summaries;
* :func:`repro.viz.heatgrid.heatgrid` — shaded spatial grids (Figs 9-10,
  18-19).
"""

from repro.viz.plots import (
    bar_chart,
    cdf_chart,
    line_chart,
    scatter_chart,
    sparkline,
)
from repro.viz.heatgrid import heatgrid

__all__ = [
    "bar_chart",
    "cdf_chart",
    "line_chart",
    "scatter_chart",
    "sparkline",
    "heatgrid",
]
