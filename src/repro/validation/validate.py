"""Scoring the measurement methodology against taxi ground truth (§3.5).

The fleet measures the taxi replayer exactly as it measures Uber; the
replayer's trace yields known per-interval supply and demand.  The paper
reports its clients "capture 97 % of cars and 95 % of deaths", with the
measured and ground-truth series nearly indistinguishable (Fig 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.geo.polygon import Polygon
from repro.marketplace.types import CarType
from repro.measurement.records import CampaignLog
from repro.taxi.replay import TaxiReplayServer
from repro.analysis.supply_demand import estimate_supply_demand


@dataclass(frozen=True)
class ValidationReport:
    """Capture rates and per-interval series for Fig 4."""

    car_capture: float
    death_capture: float
    intervals: List[Tuple[int, int, int, int, int]]
    # (interval_index, measured_supply, true_supply,
    #  measured_demand, true_demand)

    @property
    def supply_correlation(self) -> float:
        measured = [row[1] for row in self.intervals]
        truth = [row[2] for row in self.intervals]
        if len(measured) < 3:
            return float("nan")
        return float(np.corrcoef(measured, truth)[0, 1])

    @property
    def demand_correlation(self) -> float:
        measured = [row[3] for row in self.intervals]
        truth = [row[4] for row in self.intervals]
        if len(measured) < 3:
            return float("nan")
        return float(np.corrcoef(measured, truth)[0, 1])


def validate_against_taxis(
    log: CampaignLog,
    replay: TaxiReplayServer,
    boundary: Optional[Polygon] = None,
    interval_s: float = 300.0,
    edge_margin_m: float = 100.0,
) -> ValidationReport:
    """Compare fleet estimates over *log* with the replayer's truth.

    The first and last intervals are trimmed (partially observed).
    Capture rates are ratios of totals across the compared window; they
    can exceed 1 slightly for demand because offline events are
    indistinguishable from bookings (§3.3 case 3 — the estimate is an
    upper bound).
    """
    estimates = estimate_supply_demand(
        log,
        car_type=CarType.UBERT,
        boundary=boundary,
        interval_s=interval_s,
        min_lifespan_s=60.0,
        edge_margin_m=edge_margin_m,
    )
    if len(estimates) < 3:
        raise ValueError("campaign too short to validate (need >2 intervals)")
    estimates = estimates[1:-1]
    start = estimates[0].interval_index * interval_s
    end = (estimates[-1].interval_index + 1) * interval_s
    truth = replay.ground_truth(
        start, end, interval_s,
        interior_of=boundary, edge_margin_m=edge_margin_m,
    )
    truth_by_idx = {t.interval_index: t for t in truth}

    rows: List[Tuple[int, int, int, int, int]] = []
    measured_cars = true_cars = measured_deaths = true_deaths = 0
    for est in estimates:
        gt = truth_by_idx.get(est.interval_index)
        if gt is None:
            continue
        rows.append(
            (
                est.interval_index,
                est.supply,
                gt.distinct_cabs,
                est.demand,
                gt.bookings,
            )
        )
        measured_cars += est.supply
        true_cars += gt.distinct_cabs
        measured_deaths += est.demand
        true_deaths += gt.bookings
    return ValidationReport(
        car_capture=(measured_cars / true_cars) if true_cars else 0.0,
        death_capture=(
            (measured_deaths / true_deaths) if true_deaths else 0.0
        ),
        intervals=rows,
    )
