"""Methodology validation against ground truth (§3.5, Fig 4)."""

from repro.validation.validate import ValidationReport, validate_against_taxis

__all__ = ["ValidationReport", "validate_against_taxis"]
