"""Passenger demand process.

Ride requests arrive as an inhomogeneous Poisson process whose rate follows
a diurnal profile (peaks at the two rush hours, §4.2), with pickups placed
around the city's hotspots (Times Square, the Financial District, ...,
§4.3).  Two behavioural effects the paper measured are modelled explicitly:

* **Price elasticity** — surge "reduces demand by pricing some customers
  out of the market" (§1).  The probability that a would-be rider actually
  requests decays exponentially in the multiplier, producing the large
  negative demand response of Fig 22.
* **Wait-out behaviour** — the paper conjectures customers learned that
  most surges last under 5 minutes and simply wait them out (§5.5).  A
  configurable fraction of priced-out riders return after the current
  5-minute interval instead of vanishing.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.geo.latlon import LatLon
from repro.geo.regions import CityRegion
from repro.marketplace.types import CarType


@dataclass(frozen=True)
class DiurnalProfile:
    """Piecewise-linear time-of-day demand level.

    Control points are ``(hour, level)`` pairs; levels are interpolated
    linearly and wrap around midnight.  Separate weekday and weekend
    shapes reproduce the paper's observation that weekend surge peaks at
    noon-3pm (tourists) while weekday surge peaks at rush hour (§4.2).
    """

    weekday: Tuple[Tuple[float, float], ...]
    weekend: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        for pts in (self.weekday, self.weekend):
            if len(pts) < 2:
                raise ValueError("profiles need at least two control points")
            hours = [h for h, _ in pts]
            if hours != sorted(hours):
                raise ValueError("control points must be hour-sorted")
            if any(not 0.0 <= h < 24.0 for h in hours):
                raise ValueError("control hours must lie in [0, 24)")
            if any(level < 0.0 for _, level in pts):
                raise ValueError("demand levels cannot be negative")

    def level(self, hour: float, is_weekend: bool) -> float:
        """Interpolated demand level at *hour* in [0, 24)."""
        pts = self.weekend if is_weekend else self.weekday
        hour = hour % 24.0
        # Wrap: append the first point shifted by 24h, prepend last - 24h.
        extended = (
            [(pts[-1][0] - 24.0, pts[-1][1])]
            + list(pts)
            + [(pts[0][0] + 24.0, pts[0][1])]
        )
        for (h0, v0), (h1, v1) in zip(extended, extended[1:]):
            if h0 <= hour <= h1:
                if h1 == h0:
                    return v1
                frac = (hour - h0) / (h1 - h0)
                return v0 + (v1 - v0) * frac
        raise AssertionError("hour not bracketed — profile is malformed")


@dataclass(frozen=True)
class RideRequest:
    """One passenger request, converted or priced out."""

    rider_id: int
    requested_at: float
    pickup: LatLon
    dropoff: LatLon
    car_type: CarType
    multiplier_seen: float
    converted: bool
    deferred_from: Optional[float] = None


@dataclass
class DemandModel:
    """Samples ride requests for one city.

    Parameters
    ----------
    region:
        City geography (hotspots weight the pickup distribution).
    profile:
        Diurnal demand shape.
    peak_requests_per_hour:
        Poisson rate when the profile level is 1.0; the paper reports
        fulfilled demand peaking near 100 rides/hour in midtown (§3.4).
    type_mix:
        Relative request frequency per car type; the paper's observed
        ranking is X >> BLACK > SUV > XL with a handful of rare types.
    elasticity:
        Demand decay per unit of surge: P(convert | m) = exp(-e (m - 1)).
    wait_out_fraction:
        Share of priced-out riders who re-request after the current
        5-minute surge interval instead of abandoning.
    hotspot_sigma_m:
        Spatial spread of pickups around each hotspot.
    """

    region: CityRegion
    profile: DiurnalProfile
    peak_requests_per_hour: float
    type_mix: Dict[CarType, float]
    elasticity: float = 1.8
    wait_out_fraction: float = 0.5
    hotspot_sigma_m: float = 350.0
    _rider_ids: "itertools.count" = field(
        default_factory=lambda: itertools.count(1), repr=False
    )
    _deferred: List[Tuple[float, LatLon, LatLon, CarType, float]] = field(
        default_factory=list, repr=False
    )

    def __post_init__(self) -> None:
        if self.peak_requests_per_hour <= 0:
            raise ValueError("peak_requests_per_hour must be positive")
        if not self.type_mix:
            raise ValueError("type_mix cannot be empty")
        if any(w < 0 for w in self.type_mix.values()):
            raise ValueError("type weights cannot be negative")
        if not 0.0 <= self.wait_out_fraction <= 1.0:
            raise ValueError("wait_out_fraction must be in [0, 1]")

    # ------------------------------------------------------------------
    def rate_per_second(self, hour: float, is_weekend: bool) -> float:
        level = self.profile.level(hour, is_weekend)
        return self.peak_requests_per_hour * level / 3600.0

    def sample_point(self, rng: random.Random) -> LatLon:
        """A pickup/dropoff location: hotspot-weighted Gaussian mixture."""
        spots = self.region.hotspots
        total = self.region.total_hotspot_weight()
        # 20 % of traffic is background noise spread over the whole region.
        if not spots or rng.random() < 0.2:
            box = self.region.bounding_box
            for _ in range(32):
                p = LatLon(
                    rng.uniform(box.south, box.north),
                    rng.uniform(box.west, box.east),
                )
                if self.region.boundary.contains(p):
                    return p
            return box.center
        pick = rng.random() * total
        acc = 0.0
        chosen = spots[-1]
        for spot in spots:
            acc += spot.weight
            if pick <= acc:
                chosen = spot
                break
        for _ in range(32):
            p = chosen.location.offset(
                north_m=rng.gauss(0.0, self.hotspot_sigma_m),
                east_m=rng.gauss(0.0, self.hotspot_sigma_m),
            )
            if self.region.boundary.contains(p):
                return p
        return chosen.location

    def _sample_type(self, rng: random.Random) -> CarType:
        total = sum(self.type_mix.values())
        pick = rng.random() * total
        acc = 0.0
        for car_type, weight in self.type_mix.items():
            acc += weight
            if pick <= acc:
                return car_type
        return next(iter(self.type_mix))

    def conversion_probability(
        self, multiplier: float, car_type: CarType
    ) -> float:
        """P(request proceeds) given the multiplier shown at request time."""
        if not car_type.surge_eligible or multiplier <= 1.0:
            return 1.0
        return math.exp(-self.elasticity * (multiplier - 1.0))

    # ------------------------------------------------------------------
    def generate(
        self,
        now: float,
        dt: float,
        hour: float,
        is_weekend: bool,
        rng: random.Random,
        multiplier_at: Callable[[LatLon, CarType], float],
        rate_scale: float = 1.0,
    ) -> List[RideRequest]:
        """Requests arriving in the window ``[now, now + dt)``.

        ``multiplier_at`` is the *service's own* pricing lookup — riders
        see the true current multiplier for their pickup point (the jitter
        bug only affects what measurement clients observe, not billing).
        ``rate_scale`` multiplies the base arrival rate — the engine's
        demand-burst process (events, weather, last call) flows in here.
        """
        if rate_scale < 0:
            raise ValueError("rate_scale cannot be negative")
        requests: List[RideRequest] = []
        # Replay riders who waited out a surge and are due to retry.
        still_waiting: List[Tuple[float, LatLon, LatLon, CarType, float]] = []
        for due, pickup, dropoff, car_type, orig_t in self._deferred:
            if due > now:
                still_waiting.append((due, pickup, dropoff, car_type, orig_t))
                continue
            requests.append(
                self._finalize(
                    now, pickup, dropoff, car_type, rng, multiplier_at,
                    deferred_from=orig_t,
                )
            )
        self._deferred = still_waiting

        lam = self.rate_per_second(hour, is_weekend) * dt * rate_scale
        for _ in range(_poisson(lam, rng)):
            pickup = self.sample_point(rng)
            dropoff = self.sample_point(rng)
            car_type = self._sample_type(rng)
            requests.append(
                self._finalize(
                    now, pickup, dropoff, car_type, rng, multiplier_at
                )
            )
        return requests

    def _finalize(
        self,
        now: float,
        pickup: LatLon,
        dropoff: LatLon,
        car_type: CarType,
        rng: random.Random,
        multiplier_at: Callable[[LatLon, CarType], float],
        deferred_from: Optional[float] = None,
    ) -> RideRequest:
        multiplier = multiplier_at(pickup, car_type)
        converted = rng.random() < self.conversion_probability(
            multiplier, car_type
        )
        if not converted and deferred_from is None:
            if rng.random() < self.wait_out_fraction:
                # Retry just after the next 5-minute boundary.
                next_interval = (math.floor(now / 300.0) + 1) * 300.0
                self._deferred.append(
                    (
                        next_interval + rng.uniform(5.0, 60.0),
                        pickup,
                        dropoff,
                        car_type,
                        now,
                    )
                )
        return RideRequest(
            rider_id=next(self._rider_ids),
            requested_at=now,
            pickup=pickup,
            dropoff=dropoff,
            car_type=car_type,
            multiplier_seen=multiplier,
            converted=converted,
            deferred_from=deferred_from,
        )


def _poisson(lam: float, rng: random.Random) -> int:
    """Knuth's Poisson sampler; adequate for the per-tick rates used here.

    For the large-lambda regime (taxi generator uses hourly bins) we
    switch to a normal approximation to avoid O(lambda) work.
    """
    if lam < 0:
        raise ValueError("lambda must be >= 0")
    if lam == 0:
        return 0
    if lam > 50.0:
        return max(0, int(round(rng.gauss(lam, math.sqrt(lam)))))
    threshold = math.exp(-lam)
    k = 0
    p = 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1
