"""Driver-set pricing: the Sidecar alternative (§5.5 discussion).

"Another alternative would be for Uber to adopt Sidecar's pricing
approach, in which drivers set their own prices independently.  This
free-market approach obviates the need for a complex, opaque algorithm
and empowers customers to accept or decline fares at will."

:class:`DriverSetPricingEngine` swaps the surge engine out of the
pricing path: the multiplier a rider sees is the *nearest idle driver's*
personal rate.  Drivers adjust their rate from their own utilization —
busy drivers creep their price up, idle drivers discount back toward
(and slightly below) base.  There are no surge areas, no 5-minute clock,
and no jitter bug in this mode; the §3 measurement apparatus runs
unchanged against it, which is exactly why the paper notes such data is
hard to audit systematically ("these additional variables make it
difficult to systematically collect price information", §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.geo.latlon import LatLon
from repro.marketplace.config import CityConfig
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.types import CarType


@dataclass(frozen=True)
class DriverSetParams:
    """How drivers move their personal rates.

    Every ~``decision_s`` a driver reviews their rate: if their last
    fare was within ``busy_minutes`` they raise it by ``step`` (demand
    is there — charge more); if they have idled past ``slow_minutes``
    they cut by ``step``.  Rates live in ``[floor, cap]`` — Sidecar
    drivers could discount below the base fare.
    """

    step: float = 0.1
    busy_minutes: float = 6.0
    slow_minutes: float = 18.0
    floor: float = 0.8
    cap: float = 3.0
    decision_s: float = 120.0

    def __post_init__(self) -> None:
        if not 0.0 < self.floor <= 1.0 <= self.cap:
            raise ValueError("rates must satisfy 0 < floor <= 1 <= cap")
        if self.busy_minutes >= self.slow_minutes:
            raise ValueError("busy threshold must precede slow threshold")
        if self.step <= 0:
            raise ValueError("step must be positive")


class DriverSetPricingEngine(MarketplaceEngine):
    """The marketplace with free-market per-driver pricing."""

    def __init__(
        self,
        config: CityConfig,
        seed: int = 0,
        pricing: Optional[DriverSetParams] = None,
        use_spatial_index: bool = True,
        use_vectorized_step: bool = True,
        use_batched_ping: bool = True,
        use_parallel_ping: bool = True,
        parallel_workers: Optional[int] = None,
    ) -> None:
        super().__init__(
            config,
            seed=seed,
            use_spatial_index=use_spatial_index,
            use_vectorized_step=use_vectorized_step,
            use_batched_ping=use_batched_ping,
            use_parallel_ping=use_parallel_ping,
            parallel_workers=parallel_workers,
        )
        self.pricing = pricing if pricing is not None else DriverSetParams()

    # ------------------------------------------------------------------
    # Pricing path: the nearest candidate driver's own rate.
    # ------------------------------------------------------------------
    def true_multiplier(self, location: LatLon, car_type: CarType) -> float:
        if not car_type.surge_eligible:
            return 1.0
        nearest = self.nearest_cars(location, car_type, k=1)
        if not nearest:
            return 1.0
        return nearest[0].personal_rate

    def observed_multiplier(
        self, account_id: str, location: LatLon, car_type: CarType
    ) -> float:
        # No surge areas, no server cache — nothing to serve stale.
        return self.true_multiplier(location, car_type)

    def round_observed_multiplier(
        self,
        account_id: str,
        location: LatLon,
        car_type: CarType,
        area_id: Optional[int],
        stale: bool,
    ) -> float:
        # The batched path precomputes surge inputs this pricing mode
        # ignores; defer to the per-client lookup so the batch flag
        # stays behaviour-neutral here too.
        return self.observed_multiplier(account_id, location, car_type)

    # ------------------------------------------------------------------
    # Rate dynamics
    # ------------------------------------------------------------------
    def _post_step(self, now: float, dt: float) -> None:
        p = self.pricing
        review_probability = dt / p.decision_s
        for online in self._online_by_type.values():
            for driver in online:
                if not driver.is_dispatchable:
                    continue
                if self.rng.random() >= review_probability:
                    continue
                anchor = driver.last_trip_at
                if anchor is None:
                    anchor = driver.online_since or now
                idle_minutes = (now - anchor) / 60.0
                if idle_minutes <= p.busy_minutes:
                    driver.personal_rate = min(
                        p.cap, driver.personal_rate + p.step
                    )
                elif idle_minutes >= p.slow_minutes:
                    driver.personal_rate = max(
                        p.floor, driver.personal_rate - p.step
                    )

    def rate_distribution(
        self, car_type: CarType = CarType.UBERX
    ) -> List[float]:
        """Current personal rates of idle drivers (for analysis)."""
        return [
            d.personal_rate for d in self.idle_drivers(car_type)
        ]
