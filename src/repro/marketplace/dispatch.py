"""Dispatch: nearest-driver matching and EWT computation.

Uber "routes passenger requests to the nearest driver" (§2).  Only *idle*
drivers are matchable — and only idle drivers appear in the Client app's
nearest-8 car list, which is precisely why a booked car vanishes from the
measurement data and can be counted as (an upper bound on) fulfilled
demand (§3.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.geo.index import PointIndex
from repro.geo.latlon import LatLon
from repro.marketplace.driver import Driver, Trip
from repro.marketplace.rider import RideRequest
from repro.marketplace.types import CarType

#: Seconds of fixed overhead between acceptance and wheels moving.
PICKUP_OVERHEAD_S = 120.0

#: Drivers further than this from a pickup are never dispatched.
MAX_DISPATCH_RADIUS_M = 4_000.0


@dataclass(frozen=True)
class EwtEstimate:
    """An estimated wait time, as surfaced to passengers."""

    minutes: float
    nearest_distance_m: float


class Dispatcher:
    """Stateless matching logic over a driver collection."""

    def __init__(
        self,
        pickup_overhead_s: float = PICKUP_OVERHEAD_S,
        max_radius_m: float = MAX_DISPATCH_RADIUS_M,
    ) -> None:
        if pickup_overhead_s < 0:
            raise ValueError("pickup overhead cannot be negative")
        if max_radius_m <= 0:
            raise ValueError("dispatch radius must be positive")
        self.pickup_overhead_s = pickup_overhead_s
        self.max_radius_m = max_radius_m

    # ------------------------------------------------------------------
    def nearest_idle(
        self,
        drivers: Iterable[Driver],
        location: LatLon,
        car_type: CarType,
        k: int = 8,
        index: Optional[PointIndex] = None,
    ) -> List[Driver]:
        """The *k* closest dispatchable drivers of *car_type*.

        This is the same view `pingClient` serves: eight cars, nearest
        first (§3.3).  With *index* (a :class:`PointIndex` holding
        exactly the dispatchable drivers of *car_type* — the engine
        maintains per-type idle-only indexes), the expanding-ring query
        replaces the linear scan with no predicate at all; both paths
        use the same distance function and ``(distance, driver_id)``
        tie-break, so results are identical.
        """
        if index is not None:
            return [d for _, _, d in index.nearest_k(location, k)]
        candidates = [
            (d.location.fast_distance_m(location), d.driver_id, d)
            for d in drivers
            if d.is_dispatchable and d.car_type is car_type
        ]
        candidates.sort(key=lambda item: (item[0], item[1]))
        return [d for _, _, d in candidates[:k]]

    def estimate_wait(
        self,
        drivers: Iterable[Driver],
        location: LatLon,
        car_type: CarType,
        index: Optional[PointIndex] = None,
    ) -> Optional[EwtEstimate]:
        """EWT at *location*, or ``None`` when no car is available.

        Computed from the nearest idle car's straight-line travel time
        plus a fixed pickup overhead, floored at one minute — the Client
        app never shows "0 minutes".
        """
        nearest = self.nearest_idle(
            drivers, location, car_type, k=1, index=index
        )
        if not nearest:
            return None
        return self.ewt_for(nearest[0], location)

    def ewt_for(self, driver: Driver, location: LatLon) -> EwtEstimate:
        """EWT given the already-known nearest idle driver.

        Callers that hold a nearest-car list (the ping endpoint fetches
        one anyway) can derive the EWT from its head instead of paying
        for a second nearest-driver query.
        """
        dist = driver.location.fast_distance_m(location)
        seconds = dist / driver.speed_mps + self.pickup_overhead_s
        return EwtEstimate(
            minutes=max(1.0, seconds / 60.0), nearest_distance_m=dist
        )

    # ------------------------------------------------------------------
    def dispatch(
        self,
        request: RideRequest,
        drivers: Iterable[Driver],
        now: float,
        index: Optional[PointIndex] = None,
    ) -> Optional[Driver]:
        """Book the nearest idle driver for a converted request.

        Returns the booked driver, or ``None`` when no driver of the
        right type is within :attr:`max_radius_m` (an unfulfilled
        request — invisible to the measurement methodology, which only
        sees *fulfilled* demand, §3.3).
        """
        if not request.converted:
            raise ValueError("cannot dispatch a priced-out request")
        nearest = self.nearest_idle(
            drivers, request.pickup, request.car_type, k=1, index=index
        )
        if not nearest:
            return None
        driver = nearest[0]
        if driver.location.fast_distance_m(request.pickup) > self.max_radius_m:
            return None
        driver.assign(
            Trip(
                pickup=request.pickup,
                dropoff=request.dropoff,
                requested_at=now,
                rider_id=request.rider_id,
                surge_multiplier=request.multiplier_seen,
            )
        )
        return driver
