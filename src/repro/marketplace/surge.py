"""The surge-pricing engine.

This is the component the paper reverse-engineers; the implementation
encodes exactly the externally observable properties the paper pins down
(§5), so that the audit pipeline can re-derive them blind:

* **Per-area pricing.**  Each hand-drawn surge area carries an independent
  multiplier (§5.3, Figs 18-19).
* **A 5-minute clock.**  Multipliers change once per 5-minute interval,
  and the change lands within a tight ~35-second band at a fixed phase in
  the interval (§5.2, Fig 15).
* **Supply/demand responsiveness.**  The new multiplier is driven by the
  *previous* interval's supply − demand slack and EWT, giving the strong
  Δt = 0 cross-correlations of Figs 20-21.
* **Noise.**  Surge is "extremely noisy" — most surges last a single
  interval (Fig 13).  A stochastic term in the update reproduces this.

The paper's proposed fix — smoothing updates with a weighted moving
average (§5.5 Discussion) — is implemented behind ``smoothing_alpha`` and
exercised by the ablation bench.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: The update period the paper measured (§5.2).
SURGE_INTERVAL_S = 300.0


@dataclass(frozen=True)
class SurgeParams:
    """Tunable constants of the pricing rule.

    The published multiplier for area *a* in interval *i* is::

        pressure = demand / max(supply, 1)            # previous interval
        ewt_term = max(0, ewt - ewt_floor) / ewt_scale
        raw      = 1 + gain * max(0, pressure - pressure_floor)
                     + ewt_weight * ewt_term + noise
        m        = quantize_0.1(clamp(raw, 1, cap))

    followed by optional exponential smoothing against the previous
    multiplier.  ``noise_sigma`` makes marginal surges flicker on and off
    across intervals, matching the measured short durations.
    """

    gain: float = 3.0
    pressure_floor: float = 0.15
    ewt_weight: float = 0.05
    ewt_floor_minutes: float = 4.0
    ewt_scale_minutes: float = 2.0
    noise_sigma: float = 0.12
    #: Share of the stochastic term drawn once per update for the whole
    #: city (areas co-move) vs independently per area.  The paper found
    #: SF's areas "tend to be more correlated than those in Manhattan"
    #: (§6) — SF uses a high value, Manhattan a low one.
    shared_noise_fraction: float = 0.0
    #: Share of the *pressure* term taken from the city-wide aggregate
    #: (total demand over total supply) rather than the area's own —
    #: the other half of SF's co-movement: its demand shocks (last call,
    #: events) hit the whole downtown at once.
    pressure_sharing: float = 0.0
    #: Probability per update that an area simply publishes the shared
    #: city-wide price (one quantized value for all lock-stepped areas)
    #: instead of pricing independently.  Continuous sharing alone
    #: cannot reproduce the paper's SF ("rare for one area ... to have
    #: significantly higher surge than all the others", §6): residual
    #: differences straddle quantization boundaries and the areas
    #: flip-flop by 0.1.  Lock-stepping is exact by construction.
    lockstep_probability: float = 0.0
    cap: float = 5.0
    #: Maximum per-update *increase* of the multiplier.  Decreases are
    #: unconstrained: the operator avoids price shocks on the way up but
    #: drops instantly when pressure clears.  This asymmetry is what the
    #: paper's jitter analysis exposes — the previous interval's value is
    #: usually *lower* (multi-step ramps up, one-step collapses), so the
    #: stale bug lowered prices 74 % of the time in Manhattan (§5.2).
    max_step_up: float = 0.5
    smoothing_alpha: float = 1.0  # 1.0 = no smoothing (measured behaviour)
    update_phase_s: float = 40.0
    update_band_s: float = 35.0
    interval_s: float = SURGE_INTERVAL_S

    def __post_init__(self) -> None:
        if self.cap < 1.0:
            raise ValueError("cap must be at least 1.0")
        if not 0.0 <= self.shared_noise_fraction <= 1.0:
            raise ValueError("shared_noise_fraction must be in [0, 1]")
        if not 0.0 <= self.pressure_sharing <= 1.0:
            raise ValueError("pressure_sharing must be in [0, 1]")
        if not 0.0 <= self.lockstep_probability <= 1.0:
            raise ValueError("lockstep_probability must be in [0, 1]")
        if not 0.0 < self.smoothing_alpha <= 1.0:
            raise ValueError("smoothing_alpha must be in (0, 1]")
        if self.update_phase_s + self.update_band_s >= self.interval_s:
            raise ValueError("update must land within the interval")
        if self.interval_s <= 0:
            raise ValueError("interval must be positive")


def quantize_multiplier(value: float, cap: float = 5.0) -> float:
    """Clamp to [1, cap] and round to the 0.1 steps Uber displays."""
    clamped = min(max(value, 1.0), cap)
    return round(clamped * 10.0) / 10.0


@dataclass
class AreaWindowStats:
    """Per-area accumulator over one 5-minute interval."""

    supply_samples: int = 0
    supply_total: float = 0.0
    demand: float = 0.0
    ewt_samples: int = 0
    ewt_total: float = 0.0

    def observe_supply(self, idle_count: int) -> None:
        self.supply_samples += 1
        self.supply_total += idle_count

    def observe_demand(self, amount: float = 1.0) -> None:
        """Accumulate demand signal (fractional weights allowed —
        priced-out riders register partially, see the engine)."""
        self.demand += amount

    def observe_ewt(self, minutes: float) -> None:
        self.ewt_samples += 1
        self.ewt_total += minutes

    @property
    def mean_supply(self) -> float:
        if self.supply_samples == 0:
            return 0.0
        return self.supply_total / self.supply_samples

    @property
    def mean_ewt(self) -> float:
        if self.ewt_samples == 0:
            return 0.0
        return self.ewt_total / self.ewt_samples


@dataclass(frozen=True)
class SurgeUpdate:
    """One published pricing decision (for ground-truth inspection)."""

    published_at: float
    interval_index: int
    multipliers: Dict[int, float]


class SurgeEngine:
    """Per-area surge pricing on a 5-minute clock.

    A single multiplier per area applies to every surge-eligible car type;
    the paper notes all Uber types "exhibit similar trends" (§4.2), and
    the audit pipeline only ever needs UberX.
    """

    def __init__(
        self,
        area_ids: Sequence[int],
        params: SurgeParams,
        rng: random.Random,
    ) -> None:
        # An empty area list is legal: a region with no surge polygons
        # (e.g. driver-set pricing) simply publishes nothing.
        self.params = params
        self._rng = rng
        self._area_ids = tuple(area_ids)
        self._current: Dict[int, float] = {a: 1.0 for a in area_ids}
        self._previous: Dict[int, float] = dict(self._current)
        self._window: Dict[int, AreaWindowStats] = {
            a: AreaWindowStats() for a in area_ids
        }
        self._last_window: Dict[int, AreaWindowStats] = {
            a: AreaWindowStats() for a in area_ids
        }
        self._published_interval = -1
        self._next_publish_at = self._publish_time_for(0)
        self.updates: List[SurgeUpdate] = []

    # ------------------------------------------------------------------
    def _publish_time_for(self, interval_index: int) -> float:
        """When the multiplier for *interval_index* is published.

        The paper's Fig 15: updates land inside a ~35 s band at a fixed
        phase within each 5-minute interval.
        """
        p = self.params
        jitter = self._rng.uniform(0.0, p.update_band_s)
        return interval_index * p.interval_s + p.update_phase_s + jitter

    # ------------------------------------------------------------------
    # Observation feed (called by the engine every tick)
    # ------------------------------------------------------------------
    def observe_supply(self, area_id: int, idle_count: int) -> None:
        self._window[area_id].observe_supply(idle_count)

    def observe_demand(self, area_id: int, amount: float = 1.0) -> None:
        self._window[area_id].observe_demand(amount)

    def observe_ewt(self, area_id: int, minutes: float) -> None:
        self._window[area_id].observe_ewt(minutes)

    # ------------------------------------------------------------------
    def maybe_update(self, now: float) -> Optional[SurgeUpdate]:
        """Publish new multipliers when the clock says so.

        Must be called at least once per tick; returns the update if one
        was published at this call.
        """
        if now < self._next_publish_at:
            return None
        interval = int(now // self.params.interval_s)
        if not self._area_ids:
            # Nothing to price; keep the publish clock ticking so the
            # schedule stays consistent if areas are ever compared.
            self._published_interval = interval
            self._next_publish_at = self._publish_time_for(interval + 1)
            return None
        self._previous = dict(self._current)
        city_noise = self._rng.gauss(0.0, self.params.noise_sigma)
        city_demand = sum(
            self._window[a].demand for a in self._area_ids
        )
        city_supply = sum(
            self._window[a].mean_supply for a in self._area_ids
        )
        city_pressure = city_demand / max(city_supply, 1.0)
        # The shared city-wide price: what lock-stepped areas publish.
        # Quantized once so they match *exactly* (no per-area rounding).
        city_ewts = [
            self._window[a].mean_ewt
            for a in self._area_ids
            if self._window[a].ewt_samples
        ]
        city_value = self._raw_price(
            pressure=city_pressure,
            mean_ewt=(
                sum(city_ewts) / len(city_ewts) if city_ewts else 0.0
            ),
            noise=city_noise,
            prev=max(self._current.values()),
        )
        new: Dict[int, float] = {}
        for area_id in self._area_ids:
            if self._rng.random() < self.params.lockstep_probability:
                new[area_id] = city_value
                continue
            stats = self._window[area_id]
            new[area_id] = self._price(
                area_id, stats, city_noise, city_pressure
            )
        self._current = new
        self._last_window = self._window
        self._window = {a: AreaWindowStats() for a in self._area_ids}
        self._published_interval = interval
        self._next_publish_at = self._publish_time_for(interval + 1)
        update = SurgeUpdate(
            published_at=now,
            interval_index=interval,
            multipliers=dict(new),
        )
        self.updates.append(update)
        return update

    def _raw_price(
        self, pressure: float, mean_ewt: float, noise: float, prev: float
    ) -> float:
        """Apply the pricing rule to one (pressure, EWT) observation."""
        p = self.params
        ewt_term = max(0.0, mean_ewt - p.ewt_floor_minutes)
        raw = (
            1.0
            + p.gain * max(0.0, pressure - p.pressure_floor)
            + p.ewt_weight * ewt_term / p.ewt_scale_minutes
            + noise
        )
        if p.smoothing_alpha < 1.0:
            raw = p.smoothing_alpha * raw + (1.0 - p.smoothing_alpha) * prev
        if raw > prev + p.max_step_up:
            raw = prev + p.max_step_up
        return quantize_multiplier(raw, p.cap)

    def _price(
        self,
        area_id: int,
        stats: AreaWindowStats,
        city_noise: float = 0.0,
        city_pressure: float = 0.0,
    ) -> float:
        p = self.params
        supply = stats.mean_supply
        own_pressure = stats.demand / max(supply, 1.0)
        w = p.pressure_sharing
        pressure = (1.0 - w) * own_pressure + w * city_pressure
        f = p.shared_noise_fraction
        noise = f * city_noise + (1.0 - f) * self._rng.gauss(
            0.0, p.noise_sigma
        )
        return self._raw_price(
            pressure=pressure,
            mean_ewt=stats.mean_ewt,
            noise=noise,
            prev=self._current[area_id],
        )

    def force_multipliers(self, multipliers: Dict[int, float]) -> None:
        """Override the published multipliers (scenario tool).

        Shifts the current values into the previous slot first, exactly
        like a clock update, so jitter semantics stay coherent.  Used by
        controlled experiments (strategy evaluation, examples, tests) —
        the production path never calls this.
        """
        unknown = set(multipliers) - set(self._area_ids)
        if unknown:
            raise KeyError(f"unknown surge areas: {sorted(unknown)}")
        for value in multipliers.values():
            if value < 1.0 or value > self.params.cap:
                raise ValueError(f"multiplier out of range: {value}")
        self._previous = dict(self._current)
        self._current.update(multipliers)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def multiplier(self, area_id: int) -> float:
        """The currently published multiplier for an area."""
        return self._current[area_id]

    def previous_multiplier(self, area_id: int) -> float:
        """The previous interval's multiplier — what the jitter bug serves."""
        return self._previous[area_id]

    def multipliers(self) -> Dict[int, float]:
        return dict(self._current)

    @property
    def area_ids(self) -> Tuple[int, ...]:
        return self._area_ids
