"""The marketplace simulation engine.

Binds geography, drivers, demand, dispatch, and surge pricing into a
deterministic fixed-step loop.  One engine simulates one city.  Each tick
(default 5 s, matching the Client app ping period):

1. the surge engine publishes new multipliers if its 5-minute clock fired;
2. the online driver pool is relaxed toward its diurnal target (with a
   small surge incentive on arrivals, §5.5);
3. ride requests are generated, priced, possibly converted, and dispatched
   to the nearest idle driver;
4. every online driver advances (cruising, driving to pickup, on trip);
5. per-area supply/EWT observations are fed to the surge engine, and
   ground truth is logged per 5-minute interval.

**Public car identities.**  A car's public token is refreshed every time
it (re)enters the idle pool — on coming online *and* after each dropoff —
which is why the paper can treat a disappearing car as a fulfilled ride
("death") and why unique-ID counts are a strict upper bound on true
supply (§3.3, Fig 9 caption).
"""

from __future__ import annotations

import itertools
import math
import random
import weakref
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.geo.index import AreaIndex, PointIndex
from repro.geo.latlon import EARTH_RADIUS_M, LatLon
from repro.geo.regions import SurgeAreaDef
from repro.marketplace.clock import SimClock
from repro.marketplace.config import CityConfig
from repro.marketplace.dispatch import Dispatcher
from repro.marketplace.driver import Driver, DriverState, Trip
from repro.marketplace.fleet_array import (
    FleetArray,
    RoundNearest,
    ShardedFleetState,
    _shm_attach_worker,
)
from repro.marketplace.rider import DemandModel, RideRequest, _poisson
from repro.marketplace.surge import SurgeEngine
from repro.marketplace.jitter import JitterBug
from repro.marketplace.types import FARE_TABLE, CarType
from repro.parallel.partition import GridPartition, resolve_state_shards
from repro.parallel.sharding import ShardPool, resolve_workers
from repro.parallel.shm import ProcessShardPool, SharedArrayBlock

METERS_PER_MILE = 1609.344


def _release_parallel_resources(
    block: Optional[SharedArrayBlock],
    process_pool: Optional[ProcessShardPool],
    thread_pool: Optional[ShardPool],
) -> None:
    """Tear down an engine's parallel machinery: worker pools first,
    then the shared segment (workers must be gone before the creator
    unmaps).  Runs from :meth:`MarketplaceEngine.close` or from the
    engine's ``weakref.finalize`` — it must not reference the engine
    itself, or the finalizer would keep it alive forever."""
    if process_pool is not None:
        process_pool.shutdown()
    if thread_pool is not None:
        thread_pool.shutdown()
    if block is not None:
        block.close()
        block.unlink()


@dataclass
class IntervalTruth:
    """Ground truth for one 5-minute interval (for validation and benches)."""

    interval_index: int
    start_s: float
    online_by_type: Dict[CarType, int] = field(default_factory=dict)
    distinct_online_uberx: int = 0
    fulfilled_by_area: Dict[int, int] = field(default_factory=dict)
    requests_by_area: Dict[int, int] = field(default_factory=dict)
    priced_out: int = 0
    unfulfilled: int = 0
    mean_idle_uberx_by_area: Dict[int, float] = field(default_factory=dict)
    multipliers: Dict[int, float] = field(default_factory=dict)
    mean_ewt_by_area: Dict[int, float] = field(default_factory=dict)

    @property
    def fulfilled_total(self) -> int:
        return sum(self.fulfilled_by_area.values())


@dataclass
class CompletedTrip:
    """Bookkeeping record of one completed ride."""

    rider_id: int
    car_type: CarType
    pickup: LatLon
    dropoff: LatLon
    requested_at: float
    completed_at: float
    surge_multiplier: float
    fare_usd: float


class MarketplaceEngine:
    """Deterministic simulation of one city's ride-sharing marketplace."""

    def __init__(
        self,
        config: CityConfig,
        seed: int = 0,
        use_spatial_index: bool = True,
        use_vectorized_step: bool = True,
        use_batched_ping: bool = True,
        use_parallel_ping: bool = True,
        parallel_workers: Optional[int] = None,
        use_sharded_state: bool = True,
        state_shards: Optional[int] = None,
        shard_executor: Optional[str] = None,
    ) -> None:
        self.config = config
        self.use_spatial_index = use_spatial_index
        self.use_vectorized_step = use_vectorized_step
        # Batched round serving (PingEndpoint.serve_round answers a whole
        # fleet's ping round from one FleetArray.round_nearest pass).
        # Like the other flags it must only ever change speed: all
        # sixteen flag combinations produce bit-identical ping replies,
        # truth logs, trip ledgers, and RNG state (enforced in tier-1 by
        # the tests/test_perf_regression.py flag matrix).  It only takes
        # effect on the vectorized step path; scalar engines serve
        # per-client regardless (see round_query).
        self.use_batched_ping = use_batched_ping
        # Sharded round serving: the batched pass's per-(car type,
        # location-block) distance kernels run on a worker thread pool
        # (repro.parallel.sharding) and merge back in serial order —
        # bit-identical by construction (read-only shared inputs,
        # elementwise kernels, deterministic merge, no RNG on the
        # serving path).  `parallel_workers` overrides
        # config.parallel.workers; None resolves to min(4, cpu_count),
        # so single-core machines stay on the serial path at zero cost.
        # Only meaningful on top of the batched vectorized path.
        self.use_parallel_ping = use_parallel_ping
        resolved_workers = resolve_workers(
            parallel_workers
            if parallel_workers is not None
            else config.parallel.workers
        )
        self.parallel_workers = resolved_workers
        # Sharded fleet state: the tick's movement kernel (and the
        # observe census) runs per spatial stripe (repro.parallel
        # .partition + ShardedFleetState).  Shards are assigned by
        # pre-move position, write disjoint rows of the shared arrays,
        # and merge serially in ascending stripe order — bit-identical
        # at every shard count because the kernel is elementwise and no
        # shard ever consumes RNG (the ordered draw loop runs after the
        # merge).  `state_shards` overrides config.parallel.state_shards;
        # None resolves to min(4, cpu_count), so single-core machines
        # keep the serial reference path at zero cost.  Only meaningful
        # on the vectorized step path.
        self.use_sharded_state = use_sharded_state
        resolved_shards = resolve_state_shards(
            state_shards
            if state_shards is not None
            else config.parallel.state_shards
        )
        self.state_shards = resolved_shards
        # Stripe executor for the sharded state tick: "thread" (the
        # default) runs stripes on the shared thread pool below;
        # "process" runs them in worker processes over a shared-memory
        # segment (repro.parallel.shm) — past-the-GIL scaling for
        # 100k-driver metros.  A pure speed control like every other
        # parallel knob: both executors reproduce the serial kernel
        # bit for bit at every shard count (tier-1 enforced).
        effective_executor = (
            shard_executor
            if shard_executor is not None
            else config.parallel.shard_executor
        )
        if effective_executor not in ("thread", "process"):
            raise ValueError(
                "shard_executor must be 'thread' or 'process'"
            )
        self.shard_executor = effective_executor
        # One thread pool serves both parallel layers.  Round serving
        # and the sharded state tick never overlap (they are phases of
        # one serial tick loop), so separate pools could only
        # oversubscribe: two auto-configured 4-worker pools on a
        # 4-core host would contend, not cooperate.  The shared pool is
        # sized for the larger of the two demands.
        want_ping_pool = (
            use_parallel_ping
            and use_batched_ping
            and use_vectorized_step
            and resolved_workers > 1
        )
        want_state_shards = (
            use_vectorized_step and use_sharded_state and resolved_shards > 1
        )
        shared_pool: Optional[ShardPool] = (
            ShardPool(
                max(
                    resolved_workers if want_ping_pool else 1,
                    resolved_shards if want_state_shards else 1,
                ),
                min_elements=config.parallel.min_shard_elements,
            )
            if (want_ping_pool or want_state_shards)
            else None
        )
        self._shard_pool: Optional[ShardPool] = (
            shared_pool if want_ping_pool else None
        )
        self._state_pool: Optional[ShardPool] = (
            shared_pool if want_state_shards else None
        )
        self._process_pool: Optional[ProcessShardPool] = None
        # The per-driver PointIndex is only maintained on the scalar
        # step path: the vectorized path answers nearest-k queries
        # directly off the fleet arrays (identical (distance, id)
        # ordering), so index upkeep there would be pure overhead.
        # Like `use_spatial_index`, `use_vectorized_step` must only ever
        # change speed: all four flag combinations produce bit-identical
        # truth logs, trip ledgers, and ping replies (enforced in
        # tier-1 by tests/test_perf_regression.py).
        self._maintain_index = use_spatial_index and not use_vectorized_step
        self.rng = random.Random(seed)
        self.clock = SimClock(
            start_weekday=config.start_weekday, tick_seconds=5.0
        )
        self.dispatcher = Dispatcher()
        self.demand = DemandModel(
            region=config.region,
            profile=config.demand_profile,
            peak_requests_per_hour=config.peak_requests_per_hour,
            type_mix=dict(config.type_mix),
            elasticity=config.demand_elasticity,
            wait_out_fraction=config.wait_out_fraction,
        )
        area_ids = [a.area_id for a in config.region.surge_areas]
        self.surge = SurgeEngine(
            area_ids, config.surge, random.Random(seed + 1)
        )
        self.jitter = JitterBug(config.jitter, seed=seed + 2)
        self._adjacency = config.region.adjacency()
        self._area_list: Tuple[SurgeAreaDef, ...] = tuple(
            config.region.surge_areas
        )
        self._centroids: Dict[int, LatLon] = {
            a.area_id: a.polygon.centroid() for a in self._area_list
        }

        # Spatial indexes over the two hot queries (point -> area and
        # k-nearest idle driver).  Queries through them are pure reads
        # with brute-force-identical ordering, so `use_spatial_index`
        # only changes speed, never behaviour; the flag keeps the linear
        # scans available for equivalence tests and benchmarks.
        # Each per-type PointIndex holds exactly the *dispatchable*
        # (idle) drivers of that type: membership is updated on
        # online/offline transitions, on dispatch, and as trips
        # complete, so queries need no predicate and never touch busy
        # drivers.
        box = config.region.bounding_box
        ref_lat = (box.south + box.north) / 2.0
        self._area_index: Optional[AreaIndex] = (
            AreaIndex([(a.area_id, a.polygon) for a in self._area_list])
            if use_spatial_index
            else None
        )
        # Cell size per type targets ~6 points per cell at full fleet
        # (measured optimum for k=8 queries): the ring walk then
        # touches tens of candidates over a handful of cells, and stays
        # efficient from toy fleets to the scaled scenarios the
        # benchmarks run.  (Cell size only affects speed, never
        # results.)
        width_m = (
            math.radians(box.east - box.west)
            * EARTH_RADIUS_M
            * math.cos(math.radians(ref_lat))
        )
        height_m = math.radians(box.north - box.south) * EARTH_RADIUS_M
        area_m2 = max(1.0, width_m * height_m)
        self._driver_index: Dict[CarType, PointIndex] = (
            {
                car_type: PointIndex(
                    cell_m=min(
                        250.0,
                        max(
                            40.0,
                            math.sqrt(area_m2 * 6.0 / max(1, count)),
                        ),
                    ),
                    ref_lat=ref_lat,
                )
                for car_type, count in config.fleet.items()
            }
            if self._maintain_index
            else {}
        )

        # Build the full driver pool (offline initially).
        self.drivers: List[Driver] = []
        ids = itertools.count(1)
        for car_type, count in config.fleet.items():
            for _ in range(count):
                self.drivers.append(
                    Driver(
                        driver_id=next(ids),
                        car_type=car_type,
                        location=self.demand.sample_point(self.rng),
                        speed_mps=config.driver.speed_mps,
                    )
                )
        # id -> Driver for the serving layer.  Ids happen to be dense
        # 1..N today, but nothing outside the engine may assume that:
        # consumers go through driver_by_id() instead of indexing the
        # list positionally.
        self._driver_by_id: Dict[int, Driver] = {
            d.driver_id: d for d in self.drivers
        }
        self._offline_by_type: Dict[CarType, List[Driver]] = {}
        self._online_by_type: Dict[CarType, List[Driver]] = {}
        for car_type in config.fleet:
            self._offline_by_type[car_type] = [
                d for d in self.drivers if d.car_type is car_type
            ]
            self._online_by_type[car_type] = []

        # Vectorized fleet stepping (structure-of-arrays; see
        # repro.marketplace.fleet_array).  Attaching the FleetArray
        # turns Driver.location into a lazy array-backed view.
        self._vec: Optional[FleetArray] = None
        self._sharded: Optional[ShardedFleetState] = None
        use_process = (
            effective_executor == "process" and want_state_shards
        )
        if use_vectorized_step:
            # Process executor: the kernel arrays go into one
            # shared-memory segment at construction so stripe worker
            # processes mutate the very pages the engine reads.  The
            # engine creates the segment and alone unlinks it (close()
            # below, backed by a finalizer); workers only attach.
            self._vec = FleetArray(self.drivers, shared=use_process)
            if want_state_shards:
                state_pool = self._state_pool
                assert state_pool is not None
                if use_process:
                    block = self._vec.shm_block
                    assert block is not None
                    self._process_pool = ProcessShardPool(
                        resolved_shards,
                        initializer=_shm_attach_worker,
                        initargs=(block.name, block.specs),
                    )
                self._sharded = ShardedFleetState(
                    self._vec,
                    GridPartition(
                        box.south,
                        box.north,
                        box.west,
                        box.east,
                        resolved_shards,
                    ),
                    state_pool,
                    min_shard_rows=config.parallel.min_shard_rows,
                    process_pool=self._process_pool,
                )
            # Point→area resolution for the batched observe phase.  The
            # AreaIndex answers exactly like the brute first-match
            # polygon scan, so building one here is behaviour-neutral
            # even in the `use_spatial_index=False` combination.
            self._vec_area = (
                self._area_index
                if self._area_index is not None
                else AreaIndex(
                    [(a.area_id, a.polygon) for a in self._area_list]
                )
            )
            self._centroid_lat = np.array(
                [c.lat for c in self._centroids.values()],
                dtype=np.float64,
            )
            self._centroid_lon = np.array(
                [c.lon for c in self._centroids.values()],
                dtype=np.float64,
            )
            # Interval-distinct online UberX, as a seen-bits array (the
            # scalar path accumulates a set of driver ids; only the
            # count reaches the truth log).
            self._seen_online_x = np.zeros(len(self.drivers), dtype=bool)

        # Ground-truth logging.
        self.truth: List[IntervalTruth] = []
        self.completed_trips: List[CompletedTrip] = []
        self._current_truth = IntervalTruth(interval_index=0, start_s=0.0)
        self._interval_online_uberx: Set[int] = set()
        self._interval_ewt_acc: Dict[int, List[float]] = {
            a: [] for a in area_ids
        }
        self._interval_idle_acc: Dict[int, Tuple[float, int]] = {
            a: (0.0, 0) for a in area_ids
        }

        # City-wide demand-burst level (AR(1), stepped per interval).
        self._burst_level = 1.0
        self._burst_rng = random.Random(seed + 3)

        # Warm-up: pre-seed the online pool at the midnight target so the
        # first simulated hours aren't an artificial cold start.
        self._seed_initial_supply()

        # Resource lifecycle: close() tears down the worker pools and
        # the shared segment; the finalizer runs the same teardown when
        # an engine is merely dropped, so a GC'd (or crashed-out-of)
        # engine never leaks a /dev/shm segment.  The callback holds
        # the resources directly, never the engine.
        self._finalizer = weakref.finalize(
            self,
            _release_parallel_resources,
            self._vec.shm_block if self._vec is not None else None,
            self._process_pool,
            shared_pool,
        )

    def close(self) -> None:
        """Release the engine's parallel resources (idempotent).

        Shuts the worker pools down and unlinks the shared-memory
        segment (process executor).  The engine object itself remains
        inspectable — truth logs, trips, drivers — but must not tick
        again.  Dropping an engine without calling this is safe too:
        the registered finalizer performs the identical teardown at
        collection time.
        """
        self._finalizer()

    # ------------------------------------------------------------------
    # Supply management
    # ------------------------------------------------------------------
    def _target_online(self, car_type: CarType) -> float:
        frac = self.config.online_fraction.level(
            self.clock.hour_of_day, self.clock.is_weekend
        )
        mults = self.surge.multipliers()
        # A region may legitimately have zero surge areas (e.g. a
        # driver-set-pricing city): no areas means no surge incentive,
        # not a ZeroDivisionError.
        mean_excess = (
            sum(m - 1.0 for m in mults.values()) / len(mults)
            if mults
            else 0.0
        )
        boost = 1.0 + self.config.driver.surge_supply_incentive * mean_excess
        return self.config.fleet[car_type] * frac * boost

    def _seed_initial_supply(self) -> None:
        for car_type in self.config.fleet:
            target = int(round(self._target_online(car_type)))
            for _ in range(target):
                self._bring_one_online(car_type)

    def _bring_one_online(self, car_type: CarType) -> Optional[Driver]:
        pool = self._offline_by_type[car_type]
        if not pool:
            return None
        driver = pool.pop(self.rng.randrange(len(pool)))
        driver.location = self.demand.sample_point(self.rng)
        session = self.rng.expovariate(
            1.0 / self.config.driver.mean_session_s
        )
        driver.come_online(self.clock.now, max(300.0, session), self.rng)
        self._online_by_type[car_type].append(driver)
        if self._maintain_index:
            self._driver_index[car_type].insert(
                driver.driver_id, driver.location, driver
            )
        if self._vec is not None:
            self._vec.on_online(driver, self.clock.now)
        return driver

    def _manage_supply(self, dt: float) -> None:
        tau = self.config.driver.supply_tau_s
        for car_type in self.config.fleet:
            online = self._online_by_type[car_type]
            target = self._target_online(car_type)
            deficit = target - len(online)
            if deficit > 0:
                arrivals = _poisson(dt * deficit / tau, self.rng)
                for _ in range(arrivals):
                    self._bring_one_online(car_type)
            elif deficit < -2:
                # Over target: idle drivers sign off early at a matching
                # hazard, keeping the pool tracking the diurnal curve down
                # as well as up.
                departures = _poisson(dt * (-deficit) / tau, self.rng)
                idle = [d for d in online if d.is_dispatchable]
                for _ in range(min(departures, len(idle))):
                    driver = idle.pop(self.rng.randrange(len(idle)))
                    self._take_offline(driver)

    def _take_offline(self, driver: Driver) -> None:
        if self._vec is not None:
            # The object keeps its final position across the offline
            # gap (release_supply re-onlines drivers in place).
            self._vec.refresh_location(driver)
        driver.go_offline()
        self._online_by_type[driver.car_type].remove(driver)
        self._offline_by_type[driver.car_type].append(driver)
        if self._maintain_index:
            # A driver signing off right after a dropoff was removed
            # from the idle index when dispatched and never re-entered.
            index = self._driver_index[driver.car_type]
            if driver.driver_id in index:
                index.remove(driver.driver_id)
        if self._vec is not None:
            self._vec.on_offline(driver)

    # ------------------------------------------------------------------
    # Experiment hooks: supply withholding (the collusion attack)
    # ------------------------------------------------------------------
    def withhold_supply(
        self,
        car_type: CarType,
        count: int,
        area_id: Optional[int] = None,
    ) -> List[int]:
        """Take up to *count* idle drivers offline and return their ids.

        The paper warns the black-box surge algorithm is "vulnerable to
        exploitation ... possibly by colluding groups of drivers" [2]:
        drivers who sign off together shrink measured supply, trigger
        surge, then sign back on to harvest the multiplier.  This hook
        (with :meth:`release_supply`) stages that attack in experiments;
        the production loop never calls it.
        """
        if count < 0:
            raise ValueError("count cannot be negative")
        candidates = [
            d for d in self.idle_drivers(car_type)
            if area_id is None or self.area_id_of(d.location) == area_id
        ]
        self.rng.shuffle(candidates)
        withheld = []
        for driver in candidates[:count]:
            self._take_offline(driver)
            withheld.append(driver.driver_id)
        return withheld

    def release_supply(self, driver_ids: Sequence[int]) -> int:
        """Bring specific withheld drivers back online; returns how many."""
        wanted = set(driver_ids)
        restored = 0
        for car_type, pool in self._offline_by_type.items():
            for driver in [d for d in pool if d.driver_id in wanted]:
                pool.remove(driver)
                session = self.rng.expovariate(
                    1.0 / self.config.driver.mean_session_s
                )
                driver.come_online(
                    self.clock.now, max(300.0, session), self.rng
                )
                self._online_by_type[car_type].append(driver)
                if self._maintain_index:
                    self._driver_index[car_type].insert(
                        driver.driver_id, driver.location, driver
                    )
                if self._vec is not None:
                    self._vec.on_online(driver, self.clock.now)
                restored += 1
        return restored

    # ------------------------------------------------------------------
    # Pricing lookups
    # ------------------------------------------------------------------
    def area_id_of(self, location: LatLon) -> Optional[int]:
        if self._area_index is not None:
            return self._area_index.locate(location)
        return self._area_id_brute(location)

    def _area_id_brute(self, location: LatLon) -> Optional[int]:
        """Linear first-match scan (reference path for equivalence tests)."""
        for area in self._area_list:
            if area.polygon.contains(location):
                return area.area_id
        return None

    def _index_for(self, car_type: CarType) -> Optional[PointIndex]:
        """The live driver index for *car_type*, or None when the scans
        are served another way (brute mode, or off the fleet arrays)."""
        return (
            self._driver_index.get(car_type)
            if self._maintain_index
            else None
        )

    def true_multiplier(self, location: LatLon, car_type: CarType) -> float:
        """The multiplier billing actually uses (never jittered)."""
        if not car_type.surge_eligible:
            return 1.0
        area_id = self.area_id_of(location)
        if area_id is None:
            return 1.0
        return self.surge.multiplier(area_id)

    def observed_multiplier(
        self, account_id: str, location: LatLon, car_type: CarType
    ) -> float:
        """What a given client account is served — jitter bug included."""
        if not car_type.surge_eligible:
            return 1.0
        area_id = self.area_id_of(location)
        if area_id is None:
            return 1.0
        if self.jitter.is_stale(account_id, self.clock.now):
            return self.surge.previous_multiplier(area_id)
        return self.surge.multiplier(area_id)

    # ------------------------------------------------------------------
    # Car/EWT views (consumed by the API layer)
    # ------------------------------------------------------------------
    def idle_drivers(self, car_type: CarType) -> List[Driver]:
        return [
            d for d in self._online_by_type.get(car_type, ())
            if d.is_dispatchable
        ]

    def nearest_cars(
        self, location: LatLon, car_type: CarType, k: int = 8
    ) -> List[Driver]:
        if self._vec is not None:
            drivers = self.drivers
            return [
                drivers[row]
                for _, row in self._vec.nearest_rows(location, car_type, k)
            ]
        return self.dispatcher.nearest_idle(
            self._online_by_type.get(car_type, ()),
            location,
            car_type,
            k=k,
            index=self._index_for(car_type),
        )

    def estimate_wait_minutes(
        self, location: LatLon, car_type: CarType
    ) -> Optional[float]:
        if self._vec is not None:
            res = self._vec.nearest_rows(location, car_type, 1)
            if not res:
                return None
            return self.ewt_from_nearest(res[0])
        est = self.dispatcher.estimate_wait(
            self._online_by_type.get(car_type, ()),
            location,
            car_type,
            index=self._index_for(car_type),
        )
        return None if est is None else est.minutes

    def nearest_cars_with_ewt(
        self, location: LatLon, car_type: CarType, k: int = 8
    ) -> Tuple[List[Driver], Optional[float]]:
        """Nearest cars plus the EWT, from a single spatial query.

        The head of the nearest list *is* the nearest idle driver, so
        the EWT can be derived from it directly — one query serves both
        halves of a `pingClient` reply instead of two.  Results are
        identical to calling :meth:`nearest_cars` and
        :meth:`estimate_wait_minutes` separately.
        """
        if self._vec is not None:
            res = self._vec.nearest_rows(location, car_type, k)
            if not res:
                return [], None
            drivers = self.drivers
            cars = [drivers[row] for _, row in res]
            return cars, self.ewt_from_nearest(res[0])
        cars = self.nearest_cars(location, car_type, k=k)
        if not cars:
            return cars, None
        return cars, self.dispatcher.ewt_for(cars[0], location).minutes

    def ewt_from_nearest(self, nearest: Tuple[float, int]) -> float:
        """EWT from an already-computed ``(distance_m, row)`` nearest
        pair — the same arithmetic as ``Dispatcher.ewt_for`` without
        re-reading the driver's location (the array distance is
        bit-identical to ``fast_distance_m``).  Public so the batched
        round-serving path (:meth:`round_query` consumers) can derive
        EWTs from the shared distance matrix."""
        dist, row = nearest
        seconds = (
            dist / self.drivers[row].speed_mps
            + self.dispatcher.pickup_overhead_s
        )
        return max(1.0, seconds / 60.0)

    # ------------------------------------------------------------------
    # Batched round serving (consumed by PingEndpoint.serve_round)
    # ------------------------------------------------------------------
    def round_query(
        self,
        lats: np.ndarray,
        lons: np.ndarray,
        k: int,
        car_types: Optional[Iterable[CarType]] = None,
    ) -> Optional["RoundNearest"]:
        """Top-k nearest dispatchable rows for a whole round of ping
        locations, or ``None`` when the batch path is unavailable.

        Gated on ``use_batched_ping`` here (not in the API layer) so
        the flag's behaviour lives next to the flag: when it is off —
        or the engine runs the scalar step path and has no FleetArray —
        callers fall back to per-client :meth:`nearest_cars_with_ewt`,
        which produces bit-identical results (see
        ``FleetArray.round_nearest``).  *car_types* limits the batch to
        the types the round will serve.
        """
        if not self.use_batched_ping or self._vec is None:
            return None
        return self._vec.round_nearest(
            lats, lons, k, car_types, pool=self._shard_pool
        )

    def round_prefetch_views(self, rows: Sequence[int]) -> None:
        """Bulk-warm object-side caches for the rows a round will view.

        Delegates to :meth:`FleetArray.prefetch_rows`; a no-op on the
        scalar path (which never reaches the batch serving loop).
        """
        if self._vec is not None:
            self._vec.prefetch_rows(rows)

    def round_area_ids(
        self, lats: np.ndarray, lons: np.ndarray
    ) -> List[Optional[int]]:
        """Surge-area ids for a whole round of ping locations.

        One vectorized point→area gather, identical per element to
        :meth:`area_id_of` (``AreaIndex.locate_codes`` reproduces the
        brute first-match scan exactly).  Only called on the batch path,
        where ``_vec_area`` is always attached.
        """
        area_list = self._area_list
        if not area_list:
            return [None] * int(lats.size)
        codes = self._vec_area.locate_codes(lats, lons)
        return [
            area_list[c].area_id if c >= 0 else None
            for c in codes.tolist()
        ]

    def round_observed_multiplier(
        self,
        account_id: str,
        location: LatLon,
        car_type: CarType,
        area_id: Optional[int],
        stale: bool,
    ) -> float:
        """:meth:`observed_multiplier` with the per-round shared work
        (area lookup, jitter staleness) hoisted out by the caller.

        Overridable hook: pricing engines that redefine
        ``observed_multiplier`` (e.g. ``DriverSetPricingEngine``) must
        override this too, or the batched path would diverge from the
        per-client path.  The base implementation is byte-for-byte the
        ``observed_multiplier`` logic with the precomputed inputs.
        """
        if not car_type.surge_eligible:
            return 1.0
        if area_id is None:
            return 1.0
        if stale:
            return self.surge.previous_multiplier(area_id)
        return self.surge.multiplier(area_id)

    def online_count(self, car_type: CarType) -> int:
        return len(self._online_by_type.get(car_type, ()))

    def driver_by_id(self, driver_id: int) -> Driver:
        """The driver with the given public id.

        The serving layer holds per-driver memos keyed by id (e.g. the
        ``PingEndpoint`` view cache); this accessor owns the id->object
        mapping so those memos stay correct even if driver ids ever
        stop being dense ``1..N`` list positions.
        """
        return self._driver_by_id[driver_id]

    def sync_fleet(self) -> None:
        """Flush lazily-stepped array state back into Driver objects.

        Never required for correctness — ``Driver.location`` and the
        path accessors self-refresh on read — but handy before bulk
        object-level inspection (tests, ad-hoc analysis).  No-op on the
        scalar step path.
        """
        if self._vec is not None:
            self._vec.sync_all()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Advance the marketplace by one clock step."""
        dt = self.clock.tick_seconds
        now = self.clock.tick()

        # Interval rollover for ground-truth logging.
        interval = self.clock.interval_index()
        if interval != self._current_truth.interval_index:
            self._finish_interval(interval)
            self._step_burst()

        self.surge.maybe_update(now)
        self._manage_supply(dt)
        self._generate_and_dispatch(now, dt)
        self._step_drivers(now, dt)
        self._post_step(now, dt)
        self._observe(now)

    def run(self, seconds: float) -> None:
        """Simulate *seconds* of marketplace time."""
        end = self.clock.now + seconds
        while self.clock.now < end:
            self.tick()

    def run_days(self, days: float) -> None:
        self.run(days * 86_400.0)

    # ------------------------------------------------------------------
    def _step_burst(self) -> None:
        """Advance the AR(1) demand-burst level once per interval."""
        p = self.config.burst
        level = 1.0 + p.rho * (self._burst_level - 1.0)
        level += self._burst_rng.gauss(0.0, p.sigma)
        self._burst_level = min(max(level, p.floor), p.cap)

    @property
    def burst_level(self) -> float:
        """The current exogenous demand multiplier (events/weather)."""
        return self._burst_level

    def _generate_and_dispatch(self, now: float, dt: float) -> None:
        requests = self.demand.generate(
            now,
            dt,
            self.clock.hour_of_day,
            self.clock.is_weekend,
            self.rng,
            multiplier_at=self.true_multiplier,
            rate_scale=self._burst_level,
        )
        truth = self._current_truth
        for request in requests:
            area_id = self.area_id_of(request.pickup)
            if area_id is not None:
                truth.requests_by_area[area_id] = (
                    truth.requests_by_area.get(area_id, 0) + 1
                )
                # The pricing signal weighs *placed* requests fully
                # and walked-away riders partially.  Surge onset thus
                # suppresses most of the signal that caused it — the
                # collapse half of the spike-and-collapse pattern the
                # paper measured — while the residual (plus bursts)
                # lets sustained events ramp the multiplier up in
                # capped steps (the staircase half, why jitter mostly
                # *drops* prices, §5.2).
                weight = (
                    1.0 if request.converted
                    else self.config.priced_out_demand_weight
                )
                self.surge.observe_demand(area_id, weight)
            if not request.converted:
                truth.priced_out += 1
                continue
            driver = self._dispatch_request(request, now)
            if driver is None:
                truth.unfulfilled += 1
                continue
            if self._maintain_index:
                # Booked: no longer dispatchable, leaves the idle index
                # until the trip completes.
                self._driver_index[request.car_type].remove(
                    driver.driver_id
                )
            if area_id is not None:
                truth.fulfilled_by_area[area_id] = (
                    truth.fulfilled_by_area.get(area_id, 0) + 1
                )

    def _dispatch_request(
        self, request: RideRequest, now: float
    ) -> Optional[Driver]:
        """Book the nearest idle driver for *request*, if close enough.

        The vectorized branch replicates :meth:`Dispatcher.dispatch`
        operation for operation — same nearest-1 ordering, same radius
        rule on the same distance float, same Trip — against the fleet
        arrays instead of an object scan or PointIndex.
        """
        vec = self._vec
        if vec is None:
            return self.dispatcher.dispatch(
                request,
                self._online_by_type.get(request.car_type, ()),
                now,
                index=self._index_for(request.car_type),
            )
        res = vec.nearest_rows(request.pickup, request.car_type, 1)
        if not res:
            return None
        dist, row = res[0]
        if dist > self.dispatcher.max_radius_m:
            return None
        driver = self.drivers[row]
        trip = Trip(
            pickup=request.pickup,
            dropoff=request.dropoff,
            requested_at=now,
            rider_id=request.rider_id,
            surge_multiplier=request.multiplier_seen,
        )
        driver.assign(trip)
        vec.on_assign(driver, trip)
        return driver

    def _step_drivers(self, now: float, dt: float) -> None:
        if self._vec is not None:
            self._step_drivers_vec(now, dt)
            return
        decision_p = dt / self.config.driver.cruise_decision_s
        use_index = self._maintain_index
        for car_type, online in self._online_by_type.items():
            index = self._driver_index[car_type] if use_index else None
            # Iterate over a copy: completions can trigger sign-off which
            # mutates the online list.
            for driver in list(online):
                completed = driver.step(now, dt, self.rng)
                if completed is not None:
                    self._account_trip(driver, completed, now)
                    if driver.wants_to_leave(now):
                        self._take_offline(driver)
                        continue
                    # Reappear as a brand-new public car identity.
                    driver.come_back_idle(now, self.rng)
                elif (
                    driver.state is DriverState.IDLE
                    and driver.wants_to_leave(now)
                ):
                    self._take_offline(driver)
                    continue
                if index is not None:
                    # Sync idle-only membership with the state this step
                    # produced: idle drivers track their move (cheap:
                    # usually a same-cell update) and a just-completed
                    # trip re-enters the pool; busy drivers were removed
                    # at dispatch and stay out.
                    if driver.state is DriverState.IDLE:
                        if driver.driver_id in index:
                            index.move(driver.driver_id, driver.location)
                        else:
                            index.insert(
                                driver.driver_id, driver.location, driver
                            )
                if (
                    driver.state is DriverState.IDLE
                    and driver.cruise_target is None
                    and self.rng.random() < decision_p
                ):
                    self._choose_cruise_target(driver)

    def _step_drivers_vec(self, now: float, dt: float) -> None:
        """Array-stepped equivalent of :meth:`_step_drivers`.

        Phase 1 (:meth:`FleetArray.begin_step`) advances every
        target-driven mover with batched array ops — no RNG there.  The
        loop below then visits, *in exactly the scalar iteration order*
        (online lists per car type, snapshot copies), only the drivers
        whose scalar step would consume RNG or trigger an event: idle
        wobblers (2 gauss draws), trip completions (re-identification
        token), cruise-target arrivals and post-event decision draws,
        and session expiries.  Wobble offsets whose position nothing
        reads this tick are deferred and batch-applied in
        :meth:`FleetArray.finish_step`; offsets a relocation decision
        (or sign-off) is about to read are applied inline with `math`
        arithmetic that matches the batched numpy path bit-for-bit.
        """
        vec = self._vec
        rng = self.rng
        decision_p = dt / self.config.driver.cruise_decision_s
        sharded = self._sharded
        masks = (
            sharded.begin_step(now, dt)
            if sharded is not None
            else vec.begin_step(now, dt)
        )
        wobble = masks.wobble
        cruise_arrived = masks.cruise_arrived
        completed = masks.completed
        leave = vec.planned_off <= now
        needs = completed | wobble | cruise_arrived | (masks.idle_like & leave)
        defer_rows: List[int] = []
        defer_north: List[float] = []
        defer_east: List[float] = []
        wobbled_rows: List[int] = []
        gauss = rng.gauss
        random_ = rng.random
        for online in self._online_by_type.values():
            for d in list(online):
                r = d._row
                if not needs[r]:
                    continue
                if completed[r]:
                    trip = d.trip
                    d.trip = None
                    d.state = DriverState.IDLE
                    d.trips_completed += 1
                    self._account_trip(d, trip, now)
                    if leave[r]:
                        self._take_offline(d)
                        continue
                    # Reappear as a brand-new public car identity.
                    d.come_back_idle(now, rng)
                    vec.on_back_idle(d, now)
                    if random_() < decision_p:
                        self._choose_cruise_target(d)
                        vec.set_target_from(d)
                elif wobble[r]:
                    north = gauss(0.0, 5.0)
                    east = gauss(0.0, 5.0)
                    if leave[r]:
                        vec.apply_offset(r, north, east)
                        self._take_offline(d)
                        continue
                    wobbled_rows.append(r)
                    if random_() < decision_p:
                        # The relocation policy reads the post-wobble
                        # position, so this offset cannot be deferred.
                        vec.apply_offset(r, north, east)
                        self._choose_cruise_target(d)
                        vec.set_target_from(d)
                    else:
                        defer_rows.append(r)
                        defer_north.append(north)
                        defer_east.append(east)
                elif cruise_arrived[r]:
                    if leave[r]:
                        self._take_offline(d)
                        continue
                    d.cruise_target = None
                    if random_() < decision_p:
                        self._choose_cruise_target(d)
                        vec.set_target_from(d)
                else:
                    # An idle cruiser (target not yet reached) whose
                    # session expired: the scalar path signs it off
                    # right after its move.
                    self._take_offline(d)
        vec.finish_step(now, defer_rows, defer_north, defer_east, wobbled_rows)

    def _post_step(self, now: float, dt: float) -> None:
        """Hook for engine variants (e.g. driver-set pricing); no-op."""

    def _account_trip(
        self, driver: Driver, trip: Trip, now: float
    ) -> None:
        driver.last_trip_at = now
        meters = trip.pickup.fast_distance_m(trip.dropoff)
        minutes = meters / driver.speed_mps / 60.0
        fare = FARE_TABLE[driver.car_type].fare(
            miles=meters / METERS_PER_MILE,
            minutes=minutes,
            surge_multiplier=trip.surge_multiplier,
        )
        driver.earnings_usd += FARE_TABLE[driver.car_type].driver_payout(
            miles=meters / METERS_PER_MILE,
            minutes=minutes,
            surge_multiplier=trip.surge_multiplier,
        )
        self.completed_trips.append(
            CompletedTrip(
                rider_id=trip.rider_id,
                car_type=driver.car_type,
                pickup=trip.pickup,
                dropoff=trip.dropoff,
                requested_at=trip.requested_at,
                completed_at=now,
                surge_multiplier=trip.surge_multiplier,
                fare_usd=fare,
            )
        )

    def _choose_cruise_target(self, driver: Driver) -> None:
        """Idle relocation policy: flock to surge, else drift to demand."""
        behavior = self.config.driver
        my_area = self.area_id_of(driver.location)
        if my_area is not None and driver.car_type.surge_eligible:
            my_mult = self.surge.multiplier(my_area)
            best_neighbor = None
            best_mult = my_mult + 0.2  # the paper's >= 0.2 threshold (§5.5)
            for neighbor in self._adjacency.get(my_area, ()):
                m = self.surge.multiplier(neighbor)
                if m >= best_mult:
                    best_mult = m
                    best_neighbor = neighbor
            if (
                best_neighbor is not None
                and self.rng.random() < behavior.flock_probability
            ):
                centroid = self._centroids[best_neighbor]
                area = self.config.region.area_by_id(best_neighbor)
                target = centroid.offset(
                    north_m=self.rng.gauss(0.0, 200.0),
                    east_m=self.rng.gauss(0.0, 200.0),
                )
                # A flocking driver heads *into* the surging area, not to
                # a jittered point that may fall across its border.
                driver.cruise_target = (
                    target if area.contains(target) else centroid
                )
                return
        if self.rng.random() < behavior.hotspot_attraction:
            driver.cruise_target = self.demand.sample_point(self.rng)
            return
        wander = driver.location.offset(
            north_m=self.rng.gauss(0.0, 400.0),
            east_m=self.rng.gauss(0.0, 400.0),
        )
        # Drivers work the city: wandering never leads out of the region
        # for good (a driver nudged outside heads back to demand).
        if self.config.region.boundary.contains(wander):
            driver.cruise_target = wander
        else:
            driver.cruise_target = self.demand.sample_point(self.rng)

    # ------------------------------------------------------------------
    # Observation / ground truth
    # ------------------------------------------------------------------
    def _observe(self, now: float) -> None:
        if self._vec is not None:
            self._observe_vec(now)
            return
        # Per-area idle UberX supply + EWT at area centroids feed both the
        # surge engine and the ground-truth log.
        idle_counts = {a.area_id: 0 for a in self._area_list}
        for driver in self.idle_drivers(CarType.UBERX):
            area_id = self.area_id_of(driver.location)
            if area_id is not None:
                idle_counts[area_id] += 1
        for area_id, count in idle_counts.items():
            self.surge.observe_supply(area_id, count)
            total, n = self._interval_idle_acc[area_id]
            self._interval_idle_acc[area_id] = (total + count, n + 1)
        for area_id, centroid in self._centroids.items():
            ewt = self.estimate_wait_minutes(centroid, CarType.UBERX)
            if ewt is not None:
                self.surge.observe_ewt(area_id, ewt)
                self._interval_ewt_acc[area_id].append(ewt)
        for driver in self._online_by_type.get(CarType.UBERX, ()):
            self._interval_online_uberx.add(driver.driver_id)

    def _observe_vec(self, now: float) -> None:
        """Batched :meth:`_observe`: same observations, same order.

        Per-area idle counts come from one vectorized point→area gather
        (:meth:`AreaIndex.locate_codes` — exactly the first-match answer
        the scalar loop computes per driver); per-centroid EWTs from one
        distance matrix whose row-wise argmin reproduces the
        ``(distance, driver_id)`` nearest-1 tie-break because idle rows
        are id-ordered.  The surge engine is fed per area in the same
        area-list order as the scalar loop.
        """
        vec = self._vec
        sharded = self._sharded
        area_list = self._area_list
        idle_x = vec.idle_rows(CarType.UBERX)
        if area_list:
            if sharded is not None:
                counts = sharded.area_counts(
                    idle_x, self._vec_area, len(area_list)
                )
            else:
                codes = self._vec_area.locate_codes(
                    vec.lat[idle_x], vec.lon[idle_x]
                )
                counts = np.bincount(
                    codes[codes >= 0], minlength=len(area_list)
                )
            for i, area in enumerate(area_list):
                area_id = area.area_id
                count = int(counts[i])
                self.surge.observe_supply(area_id, count)
                total, n = self._interval_idle_acc[area_id]
                self._interval_idle_acc[area_id] = (total + count, n + 1)
            if idle_x.size:
                cla = self._centroid_lat
                clo = self._centroid_lon
                if sharded is not None:
                    j, dmin = sharded.nearest_to_centroids(
                        idle_x, cla, clo
                    )
                else:
                    la = vec.lat[idle_x]
                    lo = vec.lon[idle_x]
                    x = np.radians(clo[:, None] - lo[None, :]) * np.cos(
                        np.radians((la[None, :] + cla[:, None]) / 2.0)
                    )
                    y = np.radians(cla[:, None] - la[None, :])
                    dist = EARTH_RADIUS_M * np.sqrt(x * x + y * y)
                    j = np.argmin(dist, axis=1)
                    dmin = dist[np.arange(len(area_list)), j]
                seconds = (
                    dmin / vec.speed[idle_x[j]]
                    + self.dispatcher.pickup_overhead_s
                )
                minutes = np.maximum(1.0, seconds / 60.0)
                for i, area in enumerate(area_list):
                    ewt = minutes[i].item()
                    self.surge.observe_ewt(area.area_id, ewt)
                    self._interval_ewt_acc[area.area_id].append(ewt)
        self._seen_online_x[vec.online_mask_rows(CarType.UBERX)] = True

    def _finish_interval(self, new_interval: int) -> None:
        truth = self._current_truth
        truth.online_by_type = {
            t: len(v) for t, v in self._online_by_type.items()
        }
        if self._vec is not None:
            truth.distinct_online_uberx = int(self._seen_online_x.sum())
            self._seen_online_x[:] = False
        else:
            truth.distinct_online_uberx = len(self._interval_online_uberx)
        truth.multipliers = self.surge.multipliers()
        truth.mean_idle_uberx_by_area = {
            a: (total / n if n else 0.0)
            for a, (total, n) in self._interval_idle_acc.items()
        }
        truth.mean_ewt_by_area = {
            a: (sum(v) / len(v) if v else 0.0)
            for a, v in self._interval_ewt_acc.items()
        }
        self.truth.append(truth)
        area_ids = [a.area_id for a in self._area_list]
        self._current_truth = IntervalTruth(
            interval_index=new_interval,
            start_s=new_interval * 300.0,
        )
        self._interval_online_uberx = set()
        self._interval_ewt_acc = {a: [] for a in area_ids}
        self._interval_idle_acc = {a: (0.0, 0) for a in area_ids}
