"""The "jitter" consistency bug.

In April 2015 the paper's clients began observing brief (20-30 s) windows
during which the served surge multiplier reverted to the *previous*
5-minute interval's value (§5.2, Fig 14b).  Uber's engineers confirmed the
cause: a consistency bug serving stale multipliers to random customers.
The measured signature, all reproduced here:

* 90 % of jitter events last 20-30 s and all last under 1 minute;
* the stale value equals the previous interval's multiplier, so jitter
  almost always *lowers* the price mid-surge (Fig 16);
* events strike per-client at uniformly random moments (Fig 15), with
  ~90 % observed by a single client at a time (Fig 17);
* the API datastream (and the pre-April client stream) is unaffected.

The bug is deterministic per ``(seed, account, interval)`` so campaigns
replay exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.marketplace.surge import SURGE_INTERVAL_S


@dataclass(frozen=True)
class JitterParams:
    """Knobs of the injected bug.

    ``probability`` is the chance that a given client account experiences
    one stale window in a given 5-minute interval.  Setting it to 0
    reproduces the clean February/API datastream (Fig 13's "Feb." and
    "April API" lines).
    """

    probability: float = 0.25
    min_duration_s: float = 20.0
    max_duration_s: float = 30.0
    interval_s: float = SURGE_INTERVAL_S

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if not 0.0 < self.min_duration_s <= self.max_duration_s:
            raise ValueError("durations must satisfy 0 < min <= max")
        if self.max_duration_s >= self.interval_s:
            raise ValueError("jitter must fit inside one interval")


class JitterBug:
    """Per-account stale-multiplier windows.

    The bug lives at the serving layer: it decides *when* an account sees
    stale data; the ping endpoint decides *what* stale value to substitute
    (the previous interval's multiplier, see
    :meth:`repro.marketplace.surge.SurgeEngine.previous_multiplier`).
    """

    def __init__(self, params: JitterParams, seed: int = 0) -> None:
        self.params = params
        self.seed = seed
        # Per-account window memo for one interval at a time: accounts
        # ping every 5 s, so each (account, interval) window would
        # otherwise be re-derived (seeding a fresh PRNG) dozens of
        # times.  Queries only ever target the current interval, so a
        # single-interval cache stays small and self-evicting.
        self._cache_interval = -1
        self._cache: Dict[str, Optional[Tuple[float, float]]] = {}

    def _window_for(
        self, account_id: str, interval_index: int
    ) -> Optional[Tuple[float, float]]:
        """The stale window (start, end) in seconds-into-interval, if any.

        Drawn deterministically from ``(seed, account, interval)`` so the
        same campaign replayed twice sees identical jitter.
        """
        p = self.params
        if p.probability == 0.0:
            return None
        if interval_index != self._cache_interval:
            self._cache_interval = interval_index
            self._cache = {}
        try:
            return self._cache[account_id]
        except KeyError:
            pass
        rng = random.Random(f"{self.seed}:{account_id}:{interval_index}")
        if rng.random() >= p.probability:
            window = None
        else:
            duration = rng.uniform(p.min_duration_s, p.max_duration_s)
            start = rng.uniform(0.0, p.interval_s - duration)
            window = (start, start + duration)
        self._cache[account_id] = window
        return window

    def is_stale(self, account_id: str, now: float) -> bool:
        """Is this account inside a stale window at time *now*?"""
        interval = int(now // self.params.interval_s)
        window = self._window_for(account_id, interval)
        if window is None:
            return False
        offset = now % self.params.interval_s
        return window[0] <= offset < window[1]

    def disabled(self) -> "JitterBug":
        """A copy of this bug with probability 0 (the API datastream)."""
        return JitterBug(
            JitterParams(
                probability=0.0,
                min_duration_s=self.params.min_duration_s,
                max_duration_s=self.params.max_duration_s,
                interval_s=self.params.interval_s,
            ),
            seed=self.seed,
        )
