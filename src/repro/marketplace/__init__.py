"""The simulated ride-sharing marketplace ("Uber-like" substrate).

The original study measured Uber's production service.  That service — as
measured in 2015 — no longer exists, so this package implements an
agent-based marketplace exhibiting every behaviour the paper observed and
audited:

* a crowd-sourced driver pool with diurnal online/offline churn
  (:mod:`repro.marketplace.driver`),
* a diurnal, price-elastic demand process (:mod:`repro.marketplace.rider`),
* nearest-driver dispatch with EWT computation
  (:mod:`repro.marketplace.dispatch`),
* a surge engine pricing each hand-drawn surge area independently on a
  5-minute clock (:mod:`repro.marketplace.surge`),
* the server-side consistency bug ("jitter") that served stale multipliers
  to random clients for 20-30 s (:mod:`repro.marketplace.jitter`),
* the top-level simulation loop (:mod:`repro.marketplace.engine`) and
  calibrated city scenarios (:mod:`repro.marketplace.config`).

The audit pipeline in :mod:`repro.analysis` must recover the surge
engine's behaviour purely from API observations, exactly as the paper did.
"""

from repro.marketplace.types import CarType, FareSchedule, FARE_TABLE
from repro.marketplace.clock import SimClock, SECONDS_PER_DAY
from repro.marketplace.config import (
    CityConfig,
    manhattan_config,
    sf_config,
)
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.driver_set import (
    DriverSetParams,
    DriverSetPricingEngine,
)
from repro.marketplace.surge import SurgeEngine, SurgeParams
from repro.marketplace.jitter import JitterBug, JitterParams

__all__ = [
    "CarType",
    "FareSchedule",
    "FARE_TABLE",
    "SimClock",
    "SECONDS_PER_DAY",
    "CityConfig",
    "manhattan_config",
    "sf_config",
    "MarketplaceEngine",
    "DriverSetParams",
    "DriverSetPricingEngine",
    "SurgeEngine",
    "SurgeParams",
    "JitterBug",
    "JitterParams",
]
