"""Structure-of-arrays fleet state for vectorized driver stepping.

The scalar engine advances every online driver as an individual Python
object each 5-second tick — after PR 1's spatial index removed the query
bottleneck, that per-object stepping became the dominant cost of a
campaign (≈86 % of tick time on the ``bench_perf_engine`` Manhattan ×20
scenario).  This module keeps the whole fleet's mutable hot state in
flat numpy arrays (positions, state enums, navigation targets, trip
dropoffs, path-vector ring buffers, session deadlines) so the engine can
advance *all* target-driven movers — drivers en route to a pickup, on a
trip, or cruising toward a relocation target — with a handful of
vectorized array operations per tick.

**Bit-identity contract.**  ``use_vectorized_step`` must only ever change
speed, never behaviour: same-seed ``IntervalTruth`` logs, trip ledgers,
and ping replies are bit-identical to the scalar path (enforced by
``tests/test_fleet_array.py`` and the tier-1 flag-matrix check).  Two
design rules make that possible:

* Every float the arrays produce is computed with the exact operation
  sequence the scalar code uses, restricted to primitives numpy
  reproduces bit-for-bit (``+ - * /``, ``sqrt``, ``sin``/``cos``,
  ``radians``/``degrees`` — verified on this toolchain; notably *not*
  ``hypot`` or ``log``, which is why ``equirectangular_m`` is written in
  ``sqrt(x*x + y*y)`` form).
* The shared ``random.Random`` stream is only ever consumed from an
  ordered per-driver loop in the engine, in exactly the scalar
  iteration order (online lists, per car type).  The vectorized phase
  handles the RNG-free majority (movement); the loop handles the small
  minority that draws — idle wobbles, cruise decisions, sign-offs, and
  post-trip re-identification — and defers position writes back into the
  arrays.

**Lazy object sync.**  Driver objects stay the source of truth for
everything evented (tokens, trips, earnings, session bookkeeping); the
arrays are the source of truth for anything movement touches (location,
path ring, the batched EN_ROUTE→ON_TRIP transition, cruise-target
clearing on arrival).  ``Driver.location`` is a descriptor that calls
:meth:`FleetArray.refresh_location` on read and
:meth:`FleetArray.location_written` on write, and the path accessors
call :meth:`FleetArray.refresh_path`, so dispatch, ``api/ping.py``, the
taxi replayer, and tests observe unchanged objects with no explicit
flush.  :meth:`sync_all` force-flushes everything (used by tests and
ad-hoc analysis).

One caveat of laziness: ``LatLon`` range validation happens at
materialization time (on read) rather than at each step, so a
pathological config that wobbles a driver past the poles raises on first
read instead of mid-step.  City-scale regions cannot get near that.
"""

from __future__ import annotations

import math
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

import numpy as np

from repro.geo.index import AreaIndex
from repro.geo.latlon import EARTH_RADIUS_M, LatLon
from repro.marketplace.driver import (
    PATH_VECTOR_LEN,
    Driver,
    DriverState,
    Trip,
)
from repro.marketplace.types import CarType
from repro.parallel.partition import GridPartition
from repro.parallel.sharding import ShardPool, plan_shards
from repro.parallel.shm import ArraySpec, ProcessShardPool, SharedArrayBlock

#: Integer codes for :class:`DriverState` as stored in the state array.
OFFLINE, IDLE, EN_ROUTE, ON_TRIP = 0, 1, 2, 3

#: The dispatchable-rows cache: (version, rows_all, {car_type: (start,
#: end) into rows_all}, lat[rows_all], lon[rows_all]).
_DispatchStruct = Tuple[
    int,
    np.ndarray,
    Dict[CarType, Tuple[int, int]],
    np.ndarray,
    np.ndarray,
]

_STATE_CODE = {
    DriverState.OFFLINE: OFFLINE,
    DriverState.IDLE: IDLE,
    DriverState.EN_ROUTE: EN_ROUTE,
    DriverState.ON_TRIP: ON_TRIP,
}

#: Every array the movement kernel (:func:`_move_rows_kernel` +
#: :func:`_ring_append_rows`) reads or writes.  These — and only these
#: — migrate into the shared segment when the process shard executor is
#: selected; everything else (``planned_off``, the caches, the driver
#: objects) is parent-only state the workers never see.
_KERNEL_ARRAY_NAMES: Tuple[str, ...] = (
    "lat",
    "lon",
    "state",
    "speed",
    "tgt_lat",
    "tgt_lon",
    "has_target",
    "drop_lat",
    "drop_lon",
    "path_t",
    "path_lat",
    "path_lon",
    "path_cnt",
    "path_ver",
    "stale_loc",
    "stale_path",
)


def _shared_specs(n: int) -> Tuple[ArraySpec, ...]:
    """Segment layout for an *n*-row fleet: the kernel arrays, the
    three worker-written step masks, and the mover-row scratch the
    parent fills with stripe row groups each tick."""
    return (
        ("lat", (n,), "float64"),
        ("lon", (n,), "float64"),
        ("state", (n,), "int8"),
        ("speed", (n,), "float64"),
        ("tgt_lat", (n,), "float64"),
        ("tgt_lon", (n,), "float64"),
        ("has_target", (n,), "bool"),
        ("drop_lat", (n,), "float64"),
        ("drop_lon", (n,), "float64"),
        ("path_t", (n, PATH_VECTOR_LEN), "float64"),
        ("path_lat", (n, PATH_VECTOR_LEN), "float64"),
        ("path_lon", (n, PATH_VECTOR_LEN), "float64"),
        ("path_cnt", (n,), "int64"),
        ("path_ver", (n,), "int64"),
        ("stale_loc", (n,), "bool"),
        ("stale_path", (n,), "bool"),
        ("mask_cruise_arrived", (n,), "bool"),
        ("mask_completed", (n,), "bool"),
        ("mask_idle_like", (n,), "bool"),
        ("mv_scratch", (n,), "int64"),
    )


class MoveArrays(Protocol):
    """The array namespace the movement kernel operates on.

    :class:`FleetArray` satisfies it directly (the serial and threaded
    paths pass ``self``); worker processes satisfy it with
    :class:`_ShmArrays`, a bare namespace of views over the attached
    shared segment.  Keeping the kernel duck-typed over this protocol
    is what makes executor bit-identity structural: there is exactly
    one kernel body, whatever memory backs the arrays.
    """

    lat: np.ndarray
    lon: np.ndarray
    state: np.ndarray
    speed: np.ndarray
    tgt_lat: np.ndarray
    tgt_lon: np.ndarray
    has_target: np.ndarray
    drop_lat: np.ndarray
    drop_lon: np.ndarray
    path_t: np.ndarray
    path_lat: np.ndarray
    path_lon: np.ndarray
    path_cnt: np.ndarray
    path_ver: np.ndarray
    stale_loc: np.ndarray
    stale_path: np.ndarray


def _ring_append_rows(
    arrays: MoveArrays, rows: np.ndarray, now: float
) -> None:
    """Append one path-ring entry for every row in *rows*."""
    slots = arrays.path_cnt[rows] % PATH_VECTOR_LEN
    arrays.path_t[rows, slots] = now
    arrays.path_lat[rows, slots] = arrays.lat[rows]
    arrays.path_lon[rows, slots] = arrays.lon[rows]
    arrays.path_cnt[rows] += 1
    arrays.path_ver[rows] += 1
    arrays.stale_path[rows] = True


def _move_rows_kernel(
    arrays: MoveArrays,
    mv: np.ndarray,
    now: float,
    dt: float,
    masks: "StepMasks",
) -> bool:
    """The movement kernel over mover rows *mv* (non-empty).

    Exactly the body :meth:`FleetArray._move_rows` documents — see
    there for the concurrency contract.  Every write lands only on
    rows in *mv*; the namespace is duck-typed (:class:`MoveArrays`) so
    the serial path, thread shards, and shared-memory worker processes
    all execute this one body over their respective array bindings.
    """
    st = arrays.state
    has_tgt = arrays.has_target
    lat = arrays.lat
    lon = arrays.lon
    la = lat[mv]
    lo = lon[mv]
    tla = arrays.tgt_lat[mv]
    tlo = arrays.tgt_lon[mv]
    # equirectangular_m(location, target), vectorized verbatim.
    x = np.radians(tlo - lo) * np.cos(np.radians((la + tla) / 2.0))
    y = np.radians(tla - la)
    dist = EARTH_RADIUS_M * np.sqrt(x * x + y * y)
    st_mv = st[mv]
    idle_mv = st_mv == IDLE
    step = np.where(
        idle_mv,
        arrays.speed[mv] * (dt * 0.5),
        arrays.speed[mv] * dt,
    )
    arrived = (dist <= step) | (dist <= 1.0)
    frac = step / np.where(arrived, 1.0, dist)
    lat[mv] = np.where(arrived, tla, la + (tla - la) * frac)
    lon[mv] = np.where(arrived, tlo, lo + (tlo - lo) * frac)
    any_done = False
    arr_rows = mv[arrived]
    if arr_rows.size:
        st_arr = st_mv[arrived]
        pickup = arr_rows[st_arr == EN_ROUTE]
        if pickup.size:
            st[pickup] = ON_TRIP
            arrays.tgt_lat[pickup] = arrays.drop_lat[pickup]
            arrays.tgt_lon[pickup] = arrays.drop_lon[pickup]
        done = arr_rows[st_arr == ON_TRIP]
        if done.size:
            st[done] = IDLE
            masks.completed[done] = True
            any_done = True
        ca = arr_rows[st_arr == IDLE]
        if ca.size:
            has_tgt[ca] = False
            masks.cruise_arrived[ca] = True
    masks.idle_like[mv[idle_mv]] = True
    _ring_append_rows(arrays, mv, now)
    arrays.stale_loc[mv] = True
    return any_done


class _ShmArrays:
    """Worker-side :class:`MoveArrays` namespace over attached views."""

    lat: np.ndarray
    lon: np.ndarray
    state: np.ndarray
    speed: np.ndarray
    tgt_lat: np.ndarray
    tgt_lon: np.ndarray
    has_target: np.ndarray
    drop_lat: np.ndarray
    drop_lon: np.ndarray
    path_t: np.ndarray
    path_lat: np.ndarray
    path_lon: np.ndarray
    path_cnt: np.ndarray
    path_ver: np.ndarray
    stale_loc: np.ndarray
    stale_path: np.ndarray

    def __init__(self, views: Dict[str, np.ndarray]) -> None:
        for name in _KERNEL_ARRAY_NAMES:
            setattr(self, name, views[name])


class _ShmWorkerState:
    """Everything a stripe worker process holds between tasks: the
    attached block, the kernel namespace, the shared step masks, and
    the mover-row scratch the parent fills per tick."""

    __slots__ = ("block", "arrays", "masks", "mv")

    def __init__(self, block: SharedArrayBlock) -> None:
        self.block = block
        self.arrays = _ShmArrays(block.arrays)
        # ``wobble`` is engine-only (the kernel never touches it); a
        # zero-length placeholder keeps the StepMasks shape.
        self.masks = StepMasks(
            np.zeros(0, dtype=bool),
            block.arrays["mask_cruise_arrived"],
            block.arrays["mask_completed"],
            block.arrays["mask_idle_like"],
        )
        self.mv = block.arrays["mv_scratch"]


#: Per-worker attached state, set once by the pool initializer.
_SHM_WORKER: Optional[_ShmWorkerState] = None


def _shm_attach_worker(name: str, specs: Sequence[ArraySpec]) -> None:
    """:class:`~repro.parallel.shm.ProcessShardPool` initializer:
    attach the fleet's shared segment once per worker process (without
    a resource-tracker registration — only the creator unlinks; see
    ``repro.parallel.shm``)."""
    global _SHM_WORKER
    _SHM_WORKER = _ShmWorkerState(SharedArrayBlock.attach(name, specs))


def _shm_move_worker(r0: int, r1: int, now: float, dt: float) -> bool:
    """One stripe's movement task in a worker process.

    The parent wrote this stripe's mover rows into
    ``mv_scratch[r0:r1]``; the kernel then runs over the attached
    views — the very pages the parent sees — and returns the
    any-trip-completed bit, the only thing that crosses back by value.
    """
    state = _SHM_WORKER
    if state is None:
        raise RuntimeError(
            "shared-memory worker used before _shm_attach_worker ran"
        )
    mv = state.mv[r0:r1]
    return _move_rows_kernel(state.arrays, mv, now, dt, state.masks)


class StepMasks:
    """Boolean row masks produced by :meth:`FleetArray.begin_step`.

    ``wobble``          idle drivers with no cruise target (they draw
                        2 gauss GPS-wobble offsets in the ordered loop);
    ``cruise_arrived``  idle drivers whose cruise target was reached
                        this tick (target cleared, decision draw due);
    ``completed``       drivers whose trip reached its dropoff (state
                        already IDLE in the arrays; the engine finalizes
                        the object, accounts the fare, and re-identifies
                        or signs the driver off);
    ``idle_like``       every row that is IDLE after the move phase and
                        subject to the scalar path's session-expiry
                        check (wobblers plus all cruise movers).
    """

    __slots__ = ("wobble", "cruise_arrived", "completed", "idle_like")

    def __init__(
        self,
        wobble: np.ndarray,
        cruise_arrived: np.ndarray,
        completed: np.ndarray,
        idle_like: np.ndarray,
    ) -> None:
        self.wobble = wobble
        self.cruise_arrived = cruise_arrived
        self.completed = completed
        self.idle_like = idle_like


class RoundNearest:
    """Top-k nearest dispatchable rows for every (ping location, car
    type) pair of one batched serving round.

    Produced by :meth:`FleetArray.round_nearest`: one distance matrix
    per (fleet, car type) against *all* ping locations, with the top-k
    extraction done in one stable-argsort pass per type.  ``nearest(i,
    car_type)`` then returns exactly what
    :meth:`FleetArray.nearest_rows` returns for location *i* — the same
    ``(distance, driver_id)`` ordering on the same floats — from plain
    list indexing.  ``served_rows`` is the ascending union of every row
    any location will be served, so a caller can refresh per-driver
    state (view memos, token checks) once per round instead of once per
    (location, type, rank).
    """

    __slots__ = ("_per_type", "served_rows")

    def __init__(
        self,
        per_type: Dict[CarType, Tuple[List[List[float]], List[List[int]]]],
        served_rows: Sequence[int] = (),
    ) -> None:
        self._per_type = per_type
        self.served_rows = served_rows

    def segment(
        self, car_type: CarType
    ) -> Optional[Tuple[List[List[float]], List[List[int]]]]:
        """Per-type ``(distances, rows)`` row-major lists, or ``None``
        when the type has no dispatchable rows (or was not queried)."""
        return self._per_type.get(car_type)

    def nearest(
        self, i: int, car_type: CarType
    ) -> List[Tuple[float, int]]:
        """The per-location result, shaped like ``nearest_rows``."""
        seg = self._per_type.get(car_type)
        if seg is None:
            return []
        dists, rows = seg
        return list(zip(dists[i], rows[i]))


class FleetArray:
    """All fleets' mutable hot state, columnar.

    Rows are ``driver_id - 1`` (engine ids are contiguous from 1), so a
    driver's row never changes and per-type row sets are static.
    """

    def __init__(
        self, drivers: Sequence[Driver], shared: bool = False
    ) -> None:
        n = len(drivers)
        self.n = n
        self.drivers = list(drivers)
        self.lat = np.empty(n, dtype=np.float64)
        self.lon = np.empty(n, dtype=np.float64)
        self.state = np.zeros(n, dtype=np.int8)
        self.speed = np.empty(n, dtype=np.float64)
        #: Current navigation target: the pickup while EN_ROUTE, the
        #: dropoff while ON_TRIP, the cruise target while IDLE with
        #: ``has_target`` set.
        self.tgt_lat = np.zeros(n, dtype=np.float64)
        self.tgt_lon = np.zeros(n, dtype=np.float64)
        self.has_target = np.zeros(n, dtype=bool)
        #: Stashed trip dropoff, promoted to the navigation target when
        #: an EN_ROUTE driver reaches the pickup (the batched
        #: EN_ROUTE→ON_TRIP transition).
        self.drop_lat = np.zeros(n, dtype=np.float64)
        self.drop_lon = np.zeros(n, dtype=np.float64)
        #: Session deadline (`planned_offline_at`); +inf while offline.
        self.planned_off = np.full(n, np.inf, dtype=np.float64)
        # Path-vector ring buffers: the last PATH_VECTOR_LEN appends.
        # ``path_cnt`` counts appends since the last reset; the slot of
        # append k is k % PATH_VECTOR_LEN.
        self.path_t = np.zeros((n, PATH_VECTOR_LEN), dtype=np.float64)
        self.path_lat = np.zeros((n, PATH_VECTOR_LEN), dtype=np.float64)
        self.path_lon = np.zeros((n, PATH_VECTOR_LEN), dtype=np.float64)
        self.path_cnt = np.zeros(n, dtype=np.int64)
        # Lazy-sync dirty flags, per row.
        self.stale_loc = np.zeros(n, dtype=bool)
        self.stale_path = np.zeros(n, dtype=bool)

        # Static per-type row sets (fleet composition never changes).
        self.type_code: Dict[CarType, int] = {}
        ctype = np.empty(n, dtype=np.int16)
        for i, d in enumerate(drivers):
            if d.driver_id != i + 1:
                raise ValueError(
                    "FleetArray requires contiguous driver ids from 1"
                )
            if d.car_type not in self.type_code:
                self.type_code[d.car_type] = len(self.type_code)
            ctype[i] = self.type_code[d.car_type]
        self.ctype = ctype
        self.rows_by_type: Dict[CarType, np.ndarray] = {
            ct: np.nonzero(ctype == code)[0]
            for ct, code in self.type_code.items()
        }
        # Per-type idle row cache for the nearest-k / dispatch queries;
        # membership changes only at evented transitions, so the cache
        # survives whole ping rounds.
        self._idle_rows: Dict[CarType, np.ndarray] = {}
        #: Bumped on any position or idle-membership change; keys the
        #: idle-struct and shared-distance caches below.
        self._version = 0
        # (version, rows_all, {type: (start, end)}, lat[rows], lon[rows]):
        # every dispatchable row across all types, grouped by type, with
        # coordinates gathered once.  A ping queries 8 types from one
        # location, so one struct (and one distance evaluation, cached in
        # ``_query``) serves the whole reply.
        self._struct: Optional[_DispatchStruct] = None
        self._query: Optional[Tuple[float, float, np.ndarray]] = None
        #: Monotone per-row ring version; keys the ring-built
        #: ``path_triples`` cache on the driver object.
        self.path_ver = np.zeros(n, dtype=np.int64)

        for i, d in enumerate(drivers):
            loc = d.__dict__["_loc"]
            self.lat[i] = loc.lat
            self.lon[i] = loc.lon
            self.speed[i] = d.speed_mps
            self.state[i] = _STATE_CODE[d.state]
            d._fleet = self
            d._row = i

        #: Shared-memory backing for the kernel arrays (process shard
        #: executor only); ``None`` keeps the plain heap allocation
        #: above.  Created here, unlinked by the engine's close path —
        #: see ``repro.parallel.shm`` for the lifetime rules.
        self.shm_block: Optional[SharedArrayBlock] = None
        if shared:
            self._adopt_shared_block()

    def _adopt_shared_block(self) -> None:
        """Migrate the kernel-hot arrays into one shared segment.

        The SoA layout is unchanged — every attribute keeps its name,
        shape, and dtype — only the backing memory moves, so every
        consumer (the kernel, the ping queries, the lazy object sync)
        is oblivious.  Current contents are copied in, making the
        migration safe whenever it runs.
        """
        block = SharedArrayBlock.create(_shared_specs(self.n))
        for name in _KERNEL_ARRAY_NAMES:
            view = block.arrays[name]
            view[...] = getattr(self, name)
            setattr(self, name, view)
        self.shm_block = block

    # ------------------------------------------------------------------
    # Lazy object sync
    # ------------------------------------------------------------------
    def refresh_location(self, d: Driver) -> None:
        """Pull the driver's array position (and the movement-coupled
        state) back into the object, if stale."""
        r = d._row
        if not self.stale_loc[r]:
            return
        self.stale_loc[r] = False
        d.__dict__["_loc"] = LatLon(self.lat[r].item(), self.lon[r].item())
        # The only lazily-applied state change is the batched
        # EN_ROUTE→ON_TRIP promotion; everything else is evented on the
        # object at the moment it happens.
        if self.state[r] == ON_TRIP and d.state is DriverState.EN_ROUTE:
            d.state = DriverState.ON_TRIP
        if not self.has_target[r] and d.cruise_target is not None:
            d.cruise_target = None

    def location_written(self, d: Driver, value: LatLon) -> None:
        """Mirror an object-side location assignment into the arrays."""
        r = d._row
        self.lat[r] = value.lat
        self.lon[r] = value.lon
        self.stale_loc[r] = False
        self._version += 1

    def path_triples_of(self, d: Driver) -> Tuple[
        Tuple[float, float, float], ...
    ]:
        """Serve ``Driver.path_triples`` straight from the ring arrays.

        The serving layer reads triples once per viewed driver per tick;
        rebuilding the deque (5 ``LatLon`` constructions) just to
        flatten it again is the single hottest part of a vec-mode ping
        round, so the flat tuple is built directly from the ring and
        memoized against :attr:`path_ver`.  The deque stays stale until
        something reads it through :meth:`refresh_path`.
        """
        r = d._row
        if not self.stale_path[r]:
            # Deque is current (freshly synced or evented) — the plain
            # object-side memo applies.
            if d._path_cache is None:
                d._path_cache = tuple(
                    (t, p.lat, p.lon) for t, p in d.path
                )
            return d._path_cache
        ver = self.path_ver[r]
        if d._path_cache is not None and d.__dict__.get("_ring_ver") == ver:
            return d._path_cache
        cnt = int(self.path_cnt[r])
        m = PATH_VECTOR_LEN if cnt >= PATH_VECTOR_LEN else cnt
        ts = self.path_t[r].tolist()
        las = self.path_lat[r].tolist()
        los = self.path_lon[r].tolist()
        cache = tuple(
            (
                ts[k % PATH_VECTOR_LEN],
                las[k % PATH_VECTOR_LEN],
                los[k % PATH_VECTOR_LEN],
            )
            for k in range(cnt - m, cnt)
        )
        d._path_cache = cache
        d.__dict__["_ring_ver"] = ver
        return cache

    def prefetch_rows(self, rows: Sequence[int]) -> None:
        """Bulk-warm the object-side location and path-triple caches.

        Exactly equivalent to calling :meth:`refresh_location` and
        :meth:`path_triples_of` row by row, but the numpy scalar
        extraction (one ``.item()`` / row-``tolist()`` per driver) is
        amortized into whole-array gathers.  The batched serving path
        calls this once per round over every row it is about to view,
        so the per-driver fills inside ``_view_for`` become cache hits.
        """
        if not len(rows):
            return
        idx = np.asarray(rows, dtype=np.int64)
        drivers = self.drivers
        stale = idx[self.stale_loc[idx]]
        if stale.size:
            self.stale_loc[stale] = False
            las = self.lat[stale].tolist()
            los = self.lon[stale].tolist()
            promote = (self.state[stale] == ON_TRIP).tolist()
            clear_tgt = (~self.has_target[stale]).tolist()
            for j, r in enumerate(stale.tolist()):
                d = drivers[r]
                d.__dict__["_loc"] = LatLon(las[j], los[j])
                if promote[j] and d.state is DriverState.EN_ROUTE:
                    d.state = DriverState.ON_TRIP
                if clear_tgt[j] and d.cruise_target is not None:
                    d.cruise_target = None
        # Ring-side path triples: same memo discipline as
        # path_triples_of — rebuild only where the ring version moved,
        # leave ``stale_path`` set (the deque itself stays lazy).
        stale_p = self.stale_path[idx].tolist()
        vers = self.path_ver[idx].tolist()
        need: List[int] = []
        for j, r in enumerate(idx.tolist()):
            if not stale_p[j]:
                continue
            d = drivers[r]
            if (
                d._path_cache is not None
                and d.__dict__.get("_ring_ver") == vers[j]
            ):
                continue
            need.append(r)
        if need:
            narr = np.asarray(need, dtype=np.int64)
            ts2 = self.path_t[narr].tolist()
            las2 = self.path_lat[narr].tolist()
            los2 = self.path_lon[narr].tolist()
            cnts = self.path_cnt[narr].tolist()
            pv = self.path_ver[narr].tolist()
            for j, r in enumerate(need):
                d = drivers[r]
                cnt = cnts[j]
                m = PATH_VECTOR_LEN if cnt >= PATH_VECTOR_LEN else cnt
                ts = ts2[j]
                la = las2[j]
                lo = los2[j]
                d._path_cache = tuple(
                    (
                        ts[k % PATH_VECTOR_LEN],
                        la[k % PATH_VECTOR_LEN],
                        lo[k % PATH_VECTOR_LEN],
                    )
                    for k in range(cnt - m, cnt)
                )
                d.__dict__["_ring_ver"] = pv[j]

    def refresh_path(self, d: Driver) -> None:
        """Rebuild the object's path deque from the ring, if stale."""
        r = d._row
        if not self.stale_path[r]:
            return
        self.stale_path[r] = False
        cnt = int(self.path_cnt[r])
        m = PATH_VECTOR_LEN if cnt >= PATH_VECTOR_LEN else cnt
        path = d.path
        path.clear()
        t_row = self.path_t[r]
        la_row = self.path_lat[r]
        lo_row = self.path_lon[r]
        for k in range(cnt - m, cnt):
            s = k % PATH_VECTOR_LEN
            path.append(
                (
                    t_row[s].item(),
                    LatLon(la_row[s].item(), lo_row[s].item()),
                )
            )
        d._path_cache = None

    def sync_driver(self, d: Driver) -> None:
        self.refresh_location(d)
        self.refresh_path(d)

    def sync_all(self) -> None:
        """Flush every stale row back into its Driver object."""
        for r in np.nonzero(self.stale_loc | self.stale_path)[0]:
            self.sync_driver(self.drivers[r])

    # ------------------------------------------------------------------
    # Evented transitions (engine hooks)
    # ------------------------------------------------------------------
    def on_online(self, d: Driver, now: float) -> None:
        """Driver just came online (location already pushed via setter)."""
        r = d._row
        self.state[r] = IDLE
        self.has_target[r] = False
        self.planned_off[r] = d.planned_offline_at
        self._reset_ring(r, now)
        self._idle_rows.pop(d.car_type, None)
        self._version += 1

    def on_offline(self, d: Driver) -> None:
        """Driver just signed off (object already refreshed + cleared)."""
        r = d._row
        self.state[r] = OFFLINE
        self.has_target[r] = False
        self.planned_off[r] = np.inf
        self.path_cnt[r] = 0
        self.stale_loc[r] = False
        self.stale_path[r] = False
        self._idle_rows.pop(d.car_type, None)
        self._version += 1

    def on_assign(self, d: Driver, trip: Trip) -> None:
        """Driver just accepted a trip: navigate to the pickup, stash
        the dropoff for the batched promotion at arrival."""
        r = d._row
        self.state[r] = EN_ROUTE
        self.tgt_lat[r] = trip.pickup.lat
        self.tgt_lon[r] = trip.pickup.lon
        self.drop_lat[r] = trip.dropoff.lat
        self.drop_lon[r] = trip.dropoff.lon
        self.has_target[r] = False
        self._idle_rows.pop(d.car_type, None)
        self._version += 1

    def on_back_idle(self, d: Driver, now: float) -> None:
        """Driver re-identified after a dropoff: fresh path vector."""
        self._reset_ring(d._row, now)

    def set_target_from(self, d: Driver) -> None:
        """Mirror the object's cruise target into the arrays."""
        r = d._row
        target = d.cruise_target
        if target is None:
            self.has_target[r] = False
        else:
            self.tgt_lat[r] = target.lat
            self.tgt_lon[r] = target.lon
            self.has_target[r] = True

    def _reset_ring(self, r: int, now: float) -> None:
        self.path_t[r, 0] = now
        self.path_lat[r, 0] = self.lat[r]
        self.path_lon[r, 0] = self.lon[r]
        self.path_cnt[r] = 1
        self.path_ver[r] += 1
        self.stale_path[r] = False

    # ------------------------------------------------------------------
    # The vectorized step
    # ------------------------------------------------------------------
    def begin_step(self, now: float, dt: float) -> StepMasks:
        """Phase 1: advance every target-driven mover in one shot.

        Replicates ``Driver._drive_toward`` / ``Driver._cruise`` for the
        RNG-free population with bit-identical arithmetic: the same
        equirectangular distance (sqrt form), the same arrival rule
        (``dist <= step or dist <= 1.0`` → snap exactly onto the
        target), the same interpolation, and the idle half-speed factor
        applied as ``speed * (dt * 0.5)`` exactly as the scalar path
        does.  Arrivals trigger the batched transitions; all movers get
        their path-ring append.  Returns the masks the engine's ordered
        RNG loop consumes.

        The kernel itself lives in :meth:`_move_rows` so
        :class:`ShardedFleetState` can run it per spatial shard over
        disjoint row sets; this entry point is the serial reference
        (one shard covering every mover).
        """
        self._version += 1
        masks, mv = self._step_masks()
        if mv.size and self._move_rows(mv, now, dt, masks):
            self._idle_rows.clear()
        return masks

    def _step_masks(self) -> Tuple[StepMasks, np.ndarray]:
        """Classify every row for this tick: the (empty) step masks the
        movement kernel fills in, plus the mover rows it must visit."""
        st = self.state
        has_tgt = self.has_target
        idle = st == IDLE
        wobble = idle & ~has_tgt
        mv = np.nonzero((st == EN_ROUTE) | (st == ON_TRIP) | (idle & has_tgt))[0]
        block = self.shm_block
        if block is None:
            n = self.n
            cruise_arrived = np.zeros(n, dtype=bool)
            completed = np.zeros(n, dtype=bool)
            idle_like = wobble.copy()
        else:
            # Shared-memory mode: the three worker-written masks live
            # in the segment so stripe processes fill the same buffers
            # the engine's ordered loop reads.  Zeroing a persistent
            # buffer equals a fresh ``np.zeros`` bit for bit; ``wobble``
            # itself is engine-only and stays on the heap.
            shared = block.arrays
            cruise_arrived = shared["mask_cruise_arrived"]
            cruise_arrived[:] = False
            completed = shared["mask_completed"]
            completed[:] = False
            idle_like = shared["mask_idle_like"]
            idle_like[:] = wobble
        return StepMasks(wobble, cruise_arrived, completed, idle_like), mv

    def _move_rows(
        self, mv: np.ndarray, now: float, dt: float, masks: StepMasks
    ) -> bool:
        """The movement kernel over mover rows *mv* (non-empty).

        Safe to run concurrently over disjoint ``mv`` subsets: every
        write — positions, states, targets, masks, path rings,
        staleness — lands only on rows in *mv* (8-byte-aligned numpy
        slots, so disjoint row sets never tear), every elementwise
        float is identical however the rows are blocked, and the shared
        caches (``_idle_rows``, ``_struct``) are *not* touched here:
        the caller clears them serially when the returned
        any-trip-completed bit says so.

        The body lives in the module-level :func:`_move_rows_kernel` so
        worker *processes* can run the identical code over an attached
        shared segment — ``FleetArray`` satisfies :class:`MoveArrays`
        structurally, and there is exactly one kernel body whatever
        memory backs the arrays.
        """
        return _move_rows_kernel(self, mv, now, dt, masks)

    def apply_offset(self, r: int, north_m: float, east_m: float) -> None:
        """Apply one wobble offset immediately (scalar ``LatLon.offset``
        arithmetic on the array slots; bit-identical to the deferred
        batch in :meth:`finish_step`)."""
        la = self.lat[r]
        dlat = math.degrees(north_m / EARTH_RADIUS_M)
        dlon = math.degrees(
            east_m / (EARTH_RADIUS_M * math.cos(math.radians(la)))
        )
        self.lat[r] = la + dlat
        self.lon[r] = self.lon[r] + dlon
        self.stale_loc[r] = True
        self._version += 1

    def finish_step(
        self,
        now: float,
        defer_rows: List[int],
        defer_north: List[float],
        defer_east: List[float],
        wobbled_rows: List[int],
    ) -> None:
        """Phase 3: batch-apply deferred wobble offsets and append the
        surviving wobblers' path-ring entries."""
        if defer_rows:
            rows = np.array(defer_rows, dtype=np.int64)
            north = np.array(defer_north, dtype=np.float64)
            east = np.array(defer_east, dtype=np.float64)
            la = self.lat[rows]
            self.lat[rows] = la + np.degrees(north / EARTH_RADIUS_M)
            self.lon[rows] = self.lon[rows] + np.degrees(
                east / (EARTH_RADIUS_M * np.cos(np.radians(la)))
            )
        if wobbled_rows:
            rows = np.array(wobbled_rows, dtype=np.int64)
            self._ring_append(rows, now)
            self.stale_loc[rows] = True
        self._version += 1

    def _ring_append(self, rows: np.ndarray, now: float) -> None:
        _ring_append_rows(self, rows, now)

    # ------------------------------------------------------------------
    # Vectorized queries
    # ------------------------------------------------------------------
    def idle_rows(self, car_type: CarType) -> np.ndarray:
        """Rows of the currently dispatchable drivers of *car_type*,
        ascending (so position order is driver-id order)."""
        rows = self._idle_rows.get(car_type)
        if rows is None:
            all_rows = self.rows_by_type.get(car_type)
            if all_rows is None:
                rows = np.empty(0, dtype=np.int64)
            else:
                rows = all_rows[self.state[all_rows] == IDLE]
            self._idle_rows[car_type] = rows
        return rows

    def online_mask_rows(self, car_type: CarType) -> np.ndarray:
        """Rows of the currently online drivers of *car_type*."""
        all_rows = self.rows_by_type.get(car_type)
        if all_rows is None:
            return np.empty(0, dtype=np.int64)
        return all_rows[self.state[all_rows] != OFFLINE]

    def distances_to(
        self, rows: np.ndarray, location: LatLon
    ) -> np.ndarray:
        """Equirectangular metres from each row to *location*,
        bit-identical to ``LatLon.fast_distance_m``."""
        la = self.lat[rows]
        lo = self.lon[rows]
        x = np.radians(location.lon - lo) * np.cos(
            np.radians((la + location.lat) / 2.0)
        )
        y = np.radians(location.lat - la)
        return EARTH_RADIUS_M * np.sqrt(x * x + y * y)

    def _dispatchable_struct(self) -> _DispatchStruct:
        """Every dispatchable row, grouped by car type, coordinates
        gathered — rebuilt only when :attr:`_version` moves."""
        s = self._struct
        if s is not None and s[0] == self._version:
            return s
        bounds: Dict[CarType, Tuple[int, int]] = {}
        segments = []
        pos = 0
        for ct in self.type_code:
            rows = self.idle_rows(ct)
            bounds[ct] = (pos, pos + rows.size)
            pos += rows.size
            segments.append(rows)
        rows_all = (
            np.concatenate(segments) if segments
            else np.empty(0, dtype=np.int64)
        )
        s = (
            self._version,
            rows_all,
            bounds,
            self.lat[rows_all],
            self.lon[rows_all],
        )
        self._struct = s
        self._query = None
        return s

    def nearest_rows(
        self, location: LatLon, car_type: CarType, k: int
    ) -> List[Tuple[float, int]]:
        """The k nearest idle rows as ``(distance_m, row)``, ordered by
        ``(distance, driver_id)`` exactly like the brute scan and the
        PointIndex query.

        A `pingClient` reply queries every car type from one location,
        so distances to *all* dispatchable rows are evaluated in a
        single numpy pass and memoized per ``(position state, query
        point)``; each per-type call then only pays for its own top-k
        selection on a slice.
        """
        if k <= 0:
            return []
        _, rows_all, bounds, la_all, lo_all = self._dispatchable_struct()
        seg = bounds.get(car_type)
        if seg is None or seg[0] == seg[1]:
            return []
        qlat = location.lat
        qlon = location.lon
        q = self._query
        if q is not None and q[0] == qlat and q[1] == qlon:
            d_all = q[2]
        else:
            # equirectangular_m, vectorized verbatim (elementwise, so
            # values are identical whatever the batch grouping).
            x = np.radians(qlon - lo_all) * np.cos(
                np.radians((la_all + qlat) / 2.0)
            )
            y = np.radians(qlat - la_all)
            d_all = EARTH_RADIUS_M * np.sqrt(x * x + y * y)
            self._query = (qlat, qlon, d_all)
        s0, s1 = seg
        d = d_all[s0:s1]
        rows = rows_all[s0:s1]
        if rows.size <= k:
            order = np.argsort(d, kind="stable")[:k]
        else:
            # Cheap pre-cut at the kth smallest distance, then a stable
            # sort of the (tiny) candidate set; ties at the cut survive
            # into the sort, so (distance, id) ordering is exact.
            cut = np.partition(d, k - 1)[k - 1]
            cand = np.nonzero(d <= cut)[0]
            order = cand[np.argsort(d[cand], kind="stable")][:k]
        return list(zip(d[order].tolist(), rows[order].tolist()))

    @staticmethod
    def _shard_topk(
        lats: np.ndarray,
        lons: np.ndarray,
        la_all: np.ndarray,
        lo_all: np.ndarray,
        s0: int,
        s1: int,
        r0: int,
        r1: int,
        k: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One shard of a round's nearest-k pass: ping-location rows
        [r0:r1) against dispatchable-struct columns [s0:s1).

        Pure function of read-only inputs — the worker threads of a
        :class:`~repro.parallel.sharding.ShardPool` run it concurrently.
        Elementwise ufuncs give the same float for the same element
        whatever the blocking, and the per-row stable argsort never
        looks across rows, so any shard decomposition reproduces the
        whole-matrix result bit for bit.  Returns ``(distances,
        order)`` with *order* relative to the segment (the caller maps
        it onto absolute rows).
        """
        la = la_all[None, s0:s1]
        lo = lo_all[None, s0:s1]
        lats_col = lats[r0:r1, None]
        lons_col = lons[r0:r1, None]
        # equirectangular_m, vectorized verbatim (elementwise, so
        # each matrix entry equals the per-query 1-D evaluation).
        x = np.radians(lons_col - lo) * np.cos(
            np.radians((la + lats_col) / 2.0)
        )
        y = np.radians(lats_col - la)
        sub = EARTH_RADIUS_M * np.sqrt(x * x + y * y)
        # Stable argsort orders by (distance, segment position) =
        # (distance, driver id); its first k are the per-query
        # partition+cut+stable-sort winners, tie-break included.
        order = np.argsort(sub, axis=1, kind="stable")[:, :k]
        d_sel = np.take_along_axis(sub, order, axis=1)
        return d_sel, order

    def round_nearest(
        self,
        lats: np.ndarray,
        lons: np.ndarray,
        k: int,
        car_types: Optional[Iterable[CarType]] = None,
        pool: Optional[ShardPool] = None,
    ) -> RoundNearest:
        """Batch :meth:`nearest_rows` over one round of ping locations.

        One distance matrix per (fleet, car type) — ``(n locations ×
        type's dispatchable rows)``, evaluated with the elementwise
        ``equirectangular_m`` arithmetic of the per-query path, so every
        entry is the identical float — followed by one stable argsort
        per type segment.  The k smallest by ``(distance, position)``
        per row are exactly the candidates the per-query
        partition-and-cut selection keeps, so replies served off this
        struct are bit-identical to per-client serving.

        *car_types* restricts the work to the types the round will
        actually serve (a type-restricted measurement fleet only needs
        one segment); ``None`` computes every type.

        With *pool* set (``use_parallel_ping``), the per-type matrices
        are decomposed into per-(car type, location-block) shards
        (:func:`~repro.parallel.sharding.plan_shards`) executed on the
        pool's worker threads — the :meth:`_shard_topk` kernels release
        the GIL — and merged back in the serial pass's (car type,
        location) order.  Shard outputs are bit-identical to the
        unsharded pass, so the flag only ever changes speed; rounds too
        small to amortize a dispatch (``pool.min_elements``) run inline.
        """
        per_type: Dict[
            CarType, Tuple[List[List[float]], List[List[int]]]
        ] = {}
        if k <= 0 or lats.size == 0:
            return RoundNearest(per_type)
        _, rows_all, bounds, la_all, lo_all = self._dispatchable_struct()
        if rows_all.size == 0:
            return RoundNearest(per_type)
        wanted_items = (
            list(bounds.items())
            if car_types is None
            else [
                (ct, bounds[ct]) for ct in car_types if ct in bounds
            ]
        )
        wanted = [
            (ct, s0, s1) for ct, (s0, s1) in wanted_items if s1 > s0
        ]
        if not wanted:
            return RoundNearest(per_type)
        n_loc = int(lats.size)
        sizes = [s1 - s0 for _, s0, s1 in wanted]
        use_pool = (
            pool is not None
            and pool.workers > 1
            and n_loc * sum(sizes) >= pool.min_elements
        )
        if use_pool:
            assert pool is not None
            shards = plan_shards(
                n_loc, sizes, pool.workers, pool.min_elements
            )
        else:
            # Serial: one whole-matrix shard per segment (the exact
            # work plan_shards emits for a single worker).
            shards = [
                (i, 0, m, 0, n_loc) for i, m in enumerate(sizes)
            ]
        tasks = [
            (
                lats,
                lons,
                la_all,
                lo_all,
                wanted[seg_i][1] + c0,
                wanted[seg_i][1] + c1,
                r0,
                r1,
                k,
            )
            for seg_i, c0, c1, r0, r1 in shards
        ]
        if use_pool:
            assert pool is not None
            results = pool.map_ordered(self._shard_topk, tasks)
        else:
            results = [self._shard_topk(*task) for task in tasks]
        # Deterministic merge: shards are segment-major in location
        # order, so concatenating each segment's blocks rebuilds the
        # whole-matrix selection exactly as the serial pass emits it.
        served: List[np.ndarray] = []
        pos = 0
        for seg_i, (ct, s0, s1) in enumerate(wanted):
            blocks = []
            while pos < len(shards) and shards[pos][0] == seg_i:
                blocks.append(results[pos])
                pos += 1
            if len(blocks) == 1:
                d_sel, order = blocks[0]
            else:
                d_sel = np.concatenate([b[0] for b in blocks], axis=0)
                order = np.concatenate([b[1] for b in blocks], axis=0)
            rows_sel = rows_all[s0:s1][order]
            served.append(rows_sel.ravel())
            per_type[ct] = (d_sel.tolist(), rows_sel.tolist())
        served_rows = (
            np.unique(np.concatenate(served)).tolist() if served else ()
        )
        return RoundNearest(per_type, served_rows)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def headings_deg(self) -> np.ndarray:
        """Instantaneous heading per driver, degrees clockwise from
        north (NaN when stationary or with fewer than two path points).

        Derived from the last path-ring segment; diagnostic only — the
        simulation itself never consumes headings.
        """
        out = np.full(self.n, np.nan, dtype=np.float64)
        cnt = self.path_cnt
        ok = np.nonzero(cnt >= 2)[0]
        if not ok.size:
            return out
        last = (cnt[ok] - 1) % PATH_VECTOR_LEN
        prev = (cnt[ok] - 2) % PATH_VECTOR_LEN
        la1 = self.path_lat[ok, prev]
        lo1 = self.path_lon[ok, prev]
        la2 = self.path_lat[ok, last]
        lo2 = self.path_lon[ok, last]
        dy = np.radians(la2 - la1)
        dx = np.radians(lo2 - lo1) * np.cos(np.radians((la1 + la2) / 2.0))
        moved = (dx != 0.0) | (dy != 0.0)
        out[ok[moved]] = np.degrees(
            np.arctan2(dx[moved], dy[moved])
        ) % 360.0
        return out


class ShardedFleetState:
    """Spatially sharded ticking over one :class:`FleetArray`.

    The serial tick (:meth:`FleetArray.begin_step`) runs the movement
    kernel over every mover at once; this facade splits the movers into
    per-grid-block row shards (:class:`~repro.parallel.partition.GridPartition`,
    assignment by *pre-move* position) and runs :meth:`FleetArray._move_rows`
    per shard on a :class:`~repro.parallel.sharding.ShardPool`, over the
    very same shared numpy arrays.

    **Why bit-identity survives state sharding.**  The kernel is
    elementwise per mover row — every float it writes for row *r*
    depends only on row *r*'s slots — and shards write disjoint row
    sets of 8-byte-aligned arrays, so no write can tear or race.
    Cross-shard *events* never happen inside the kernel: a mover that
    crosses a stripe border mid-tick still belongs to the shard of its
    pre-move position (exactly the rows the serial kernel would have
    advanced), dispatch across borders runs in the engine's serial
    phase over the whole fleet, and the RNG-consuming minority is
    handled by the engine's ordered loop *after* the merge — the
    PR 2 draw-order contract is untouched because no shard ever draws.
    The only cross-shard reconciliation is the deterministic serial
    merge below: shard results gather in ascending stripe order
    (``ShardPool.map_ordered``), and the shared caches are cleared once
    by the caller, never from worker threads.

    The observe-phase helpers (:meth:`area_counts`,
    :meth:`nearest_to_centroids`) shard the per-tick supply census the
    same way: pure reads per shard, then an order-invariant integer sum
    (counts) and a lexicographic ``(distance, column)`` min-merge that
    reproduces ``np.argmin``'s first-occurrence tie-break exactly.
    """

    __slots__ = ("fleet", "partition", "pool", "min_shard_rows", "process_pool")

    def __init__(
        self,
        fleet: FleetArray,
        partition: GridPartition,
        pool: ShardPool,
        min_shard_rows: int = 2048,
        process_pool: Optional[ProcessShardPool] = None,
    ) -> None:
        if min_shard_rows < 1:
            raise ValueError("min_shard_rows must be >= 1")
        if process_pool is not None and fleet.shm_block is None:
            raise ValueError(
                "process shard executor requires a shared-memory fleet "
                "(FleetArray(..., shared=True))"
            )
        self.fleet = fleet
        self.partition = partition
        # The thread pool always remains: single-stripe ticks, and the
        # observe-phase helpers below, whose per-shard closures cannot
        # cross a process boundary (and need not — they are pure reads
        # the GIL-releasing ufuncs already parallelize).
        self.pool = pool
        self.min_shard_rows = min_shard_rows
        #: When set, multi-stripe movement runs in worker processes
        #: over the fleet's shared segment instead of on the thread
        #: pool (``shard_executor="process"``).
        self.process_pool = process_pool

    def begin_step(self, now: float, dt: float) -> StepMasks:
        """Sharded :meth:`FleetArray.begin_step`: same masks, same
        array state, concurrent kernel."""
        fleet = self.fleet
        fleet._version += 1
        masks, mv = fleet._step_masks()
        if not mv.size:
            return masks
        groups = (
            self.partition.split_rows(mv, fleet.lat, fleet.lon)
            if mv.size >= self.min_shard_rows
            else [mv]
        )
        if len(groups) == 1:
            done = fleet._move_rows(groups[0], now, dt, masks)
        elif self.process_pool is not None:
            done = self._move_rows_process(groups, now, dt)
        else:
            results = self.pool.map_ordered(
                fleet._move_rows,
                [(rows, now, dt, masks) for rows in groups],
            )
            done = any(results)
        if done:
            fleet._idle_rows.clear()
        return masks

    def _move_rows_process(
        self, groups: List[np.ndarray], now: float, dt: float
    ) -> bool:
        """Run the stripe kernels in worker processes.

        The masks from :meth:`FleetArray._step_masks` already live in
        the shared segment (shared-memory fleets put them there), so a
        task crossing the process boundary is five scalars: the stripe's
        ``[r0, r1)`` slice of the ``mv_scratch`` row buffer the parent
        fills here, plus ``now``/``dt``.  Workers return only the
        any-trip-completed bit; every array write happens in place on
        the shared pages, in the same disjoint row sets as the thread
        path — which is why the executor swap is bit-invisible.
        """
        fleet = self.fleet
        block = fleet.shm_block
        pool = self.process_pool
        assert block is not None and pool is not None  # ctor-enforced
        scratch = block.arrays["mv_scratch"]
        tasks: List[Tuple[int, int, float, float]] = []
        cursor = 0
        for rows in groups:
            end = cursor + rows.size
            scratch[cursor:end] = rows
            tasks.append((cursor, end, now, dt))
            cursor = end
        return any(pool.map_ordered(_shm_move_worker, tasks))

    def _split_positions(self, rows: np.ndarray) -> List[np.ndarray]:
        """Positions *into rows* per shard (ascending within each
        shard), by current position; empty shards dropped."""
        fleet = self.fleet
        codes = self.partition.assign(fleet.lat[rows], fleet.lon[rows])
        return [
            pos
            for s in range(self.partition.shards)
            for pos in (np.nonzero(codes == s)[0],)
            if pos.size
        ]

    def area_counts(
        self, rows: np.ndarray, area_index: AreaIndex, n_areas: int
    ) -> np.ndarray:
        """Per-area count of *rows* (``locate_codes`` + ``bincount``),
        sharded.

        Each shard gathers its own point→area codes (a pure read of the
        index) and bins them; integer addition is order-invariant, so
        the summed histogram equals the serial one exactly.  (The
        index's lazy label-code table may be built by more than one
        shard on first use — a benign duplicate producing identical
        tables.)
        """
        fleet = self.fleet

        def one(pos: np.ndarray) -> np.ndarray:
            sub = rows[pos]
            codes = area_index.locate_codes(fleet.lat[sub], fleet.lon[sub])
            return np.bincount(codes[codes >= 0], minlength=n_areas)

        if rows.size < self.min_shard_rows:
            return one(np.arange(rows.size))
        groups = self._split_positions(rows)
        if len(groups) == 1:
            return one(groups[0])
        counts = self.pool.map_ordered(one, [(pos,) for pos in groups])
        return np.sum(counts, axis=0)

    def nearest_to_centroids(
        self,
        rows: np.ndarray,
        c_lat: np.ndarray,
        c_lon: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-centroid nearest column of *rows*, sharded.

        Returns ``(j, dmin)`` exactly as the serial
        ``np.argmin(dist, axis=1)`` / ``dist[arange, j]`` pair over the
        full centroids × rows matrix: each shard computes its column
        block of the matrix (elementwise — each entry depends only on
        one centroid and one row), takes its own first-occurrence
        argmin, and the serial merge picks per centroid the
        lexicographically smallest ``(distance, column)`` candidate —
        which is the whole-matrix first minimum, whatever stripe it
        lives in (ties across shards included).
        """
        fleet = self.fleet

        def one(pos: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            sub = rows[pos]
            la = fleet.lat[sub]
            lo = fleet.lon[sub]
            x = np.radians(c_lon[:, None] - lo[None, :]) * np.cos(
                np.radians((la[None, :] + c_lat[:, None]) / 2.0)
            )
            y = np.radians(c_lat[:, None] - la[None, :])
            dist = EARTH_RADIUS_M * np.sqrt(x * x + y * y)
            j = np.argmin(dist, axis=1)
            return pos[j], dist[np.arange(len(c_lat)), j]

        if rows.size < self.min_shard_rows:
            return one(np.arange(rows.size))
        groups = self._split_positions(rows)
        if len(groups) == 1:
            return one(groups[0])
        parts = self.pool.map_ordered(one, [(pos,) for pos in groups])
        cand_j = np.stack([j for j, _ in parts])
        cand_d = np.stack([d for _, d in parts])
        dmin = cand_d.min(axis=0)
        at_min = cand_d == dmin[None, :]
        j = np.where(at_min, cand_j, np.iinfo(np.int64).max).min(axis=0)
        return j, dmin
