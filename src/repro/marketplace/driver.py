"""Driver agents.

Drivers are independent contractors with their own vehicles (§2).  Each
agent cycles through a small state machine::

    OFFLINE -> IDLE -> EN_ROUTE -> ON_TRIP -> IDLE -> ... -> OFFLINE

Behavioural details that matter for reproducing the paper:

* **Public IDs are randomized per online session.**  The Client app assigns
  each car a fresh unique ID every time it comes online (§3.3), which is
  why the paper cannot track individual drivers and why our analysis code
  must not either.
* **Path vectors.**  Each `pingClient` response carries a short trace of
  the car's recent movements; the paper uses it to disambiguate cars that
  drive out of the measurement area from cars that were booked (§3.3).
* **Surge response.**  When a neighbouring area surges at least 0.2 above
  the driver's area, idle drivers relocate toward it with a configurable
  (small) probability — the paper measured this flocking effect to be weak
  and inconsistent (§5.5, Fig 22).
"""

from __future__ import annotations

import enum
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional, Tuple

from repro.geo.latlon import LatLon, interpolate
from repro.marketplace.types import CarType

#: Number of recent positions retained in a car's path vector.
PATH_VECTOR_LEN = 5

class DriverState(enum.Enum):
    OFFLINE = "offline"
    IDLE = "idle"
    EN_ROUTE = "en_route"  # driving to a pickup
    ON_TRIP = "on_trip"    # passenger aboard


@dataclass
class Trip:
    """One accepted ride request."""

    pickup: LatLon
    dropoff: LatLon
    requested_at: float
    rider_id: int
    surge_multiplier: float


@dataclass
class Driver:
    """A single driver agent."""

    driver_id: int
    car_type: CarType
    location: LatLon
    speed_mps: float
    state: DriverState = DriverState.OFFLINE
    session_token: Optional[str] = None
    online_since: Optional[float] = None
    planned_offline_at: Optional[float] = None
    trip: Optional[Trip] = None
    cruise_target: Optional[LatLon] = None
    trips_completed: int = 0
    earnings_usd: float = 0.0
    last_trip_at: Optional[float] = None
    #: Monotone per-driver counter; combined with driver_id it makes
    #: every public token unique within an engine while keeping runs
    #: deterministic (a process-global counter would leak state across
    #: engine instances and break same-seed reproducibility).
    token_serial: int = 0
    #: Driver-set pricing (the Sidecar model, §5.5 discussion): each
    #: driver's own rate multiplier.  Ignored under algorithmic surge.
    personal_rate: float = 1.0
    path: Deque[Tuple[float, LatLon]] = field(
        default_factory=lambda: deque(maxlen=PATH_VECTOR_LEN)
    )
    #: Memoized :meth:`path_triples` result; the path mutates at most
    #: once per tick but is serialized once per *ping* observing the
    #: car, so the serving layer would otherwise rebuild the same tuple
    #: hundreds of times between moves.
    _path_cache: Optional[Tuple[Tuple[float, float, float], ...]] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Session management
    # ------------------------------------------------------------------
    def come_online(
        self, now: float, session_seconds: float, rng: random.Random
    ) -> None:
        """Start an online session with a freshly randomized public ID."""
        if self.state is not DriverState.OFFLINE:
            raise RuntimeError("driver is already online")
        self.state = DriverState.IDLE
        self.online_since = now
        self.planned_offline_at = now + session_seconds
        self.session_token = self._new_token(rng)
        self.path.clear()
        self.path.append((now, self.location))
        self._path_cache = None

    def _new_token(self, rng: random.Random) -> str:
        """A fresh public identity: random-looking yet reproducible."""
        self.token_serial += 1
        return (
            f"{rng.getrandbits(64):016x}"
            f"-{self.driver_id:04d}{self.token_serial:04d}"
        )

    def come_back_idle(self, now: float, rng: random.Random) -> None:
        """Re-enter the idle pool after a dropoff, as a *new* public car.

        The Client app randomizes car IDs every time a car (re)appears
        (§3.3), so a completed trip manifests to observers as one car
        dying and an unrelated one being born.
        """
        if self.state is not DriverState.IDLE:
            raise RuntimeError("come_back_idle requires the IDLE state")
        self.session_token = self._new_token(rng)
        self.path.clear()
        self.path.append((now, self.location))
        self._path_cache = None

    def go_offline(self) -> None:
        if self.state is DriverState.OFFLINE:
            raise RuntimeError("driver is already offline")
        self.state = DriverState.OFFLINE
        self.session_token = None
        self.online_since = None
        self.planned_offline_at = None
        self.trip = None
        self.cruise_target = None
        self.path.clear()
        self._path_cache = None

    @property
    def is_online(self) -> bool:
        return self.state is not DriverState.OFFLINE

    @property
    def is_dispatchable(self) -> bool:
        """Idle online drivers are the only ones dispatch may book."""
        return self.state is DriverState.IDLE

    def wants_to_leave(self, now: float) -> bool:
        """True when the planned session length has elapsed.

        Drivers never abandon a passenger: the engine defers the actual
        sign-off until any active trip completes.
        """
        return (
            self.planned_offline_at is not None
            and now >= self.planned_offline_at
        )

    # ------------------------------------------------------------------
    # Dispatch hooks
    # ------------------------------------------------------------------
    def assign(self, trip: Trip) -> None:
        if not self.is_dispatchable:
            raise RuntimeError(
                f"cannot assign trip to driver in state {self.state}"
            )
        self.trip = trip
        self.state = DriverState.EN_ROUTE
        self.cruise_target = None

    # ------------------------------------------------------------------
    # Movement
    # ------------------------------------------------------------------
    def step(self, now: float, dt: float, rng: random.Random) -> Optional[Trip]:
        """Advance the agent by *dt* seconds.

        Returns the completed :class:`Trip` if the passenger was dropped
        off during this step, else ``None``.  The engine handles fare
        accounting and post-trip state.
        """
        if self.state is DriverState.OFFLINE:
            return None
        completed: Optional[Trip] = None
        if self.state is DriverState.EN_ROUTE:
            assert self.trip is not None
            arrived = self._drive_toward(self.trip.pickup, dt)
            if arrived:
                self.state = DriverState.ON_TRIP
        elif self.state is DriverState.ON_TRIP:
            assert self.trip is not None
            arrived = self._drive_toward(self.trip.dropoff, dt)
            if arrived:
                completed = self.trip
                self.trip = None
                self.state = DriverState.IDLE
                self.trips_completed += 1
        elif self.state is DriverState.IDLE:
            self._cruise(dt, rng)
        self.path.append((now, self.location))
        self._path_cache = None
        return completed

    def _drive_toward(self, target: LatLon, dt: float) -> bool:
        """Move straight toward *target*; True when it is reached."""
        dist = self.location.fast_distance_m(target)
        step = self.speed_mps * dt
        if dist <= step or dist <= 1.0:
            self.location = target
            return True
        self.location = interpolate(self.location, target, step / dist)
        return False

    def _cruise(self, dt: float, rng: random.Random) -> None:
        """Idle drift toward the current cruise target, if any.

        The engine sets :attr:`cruise_target` from the hotspot/surge
        relocation policy; idle drivers without a target jiggle in place
        (GPS-noise scale) so their path vectors stay fresh.
        """
        if self.cruise_target is not None:
            if self._drive_toward(self.cruise_target, dt * 0.5):
                self.cruise_target = None
            return
        # Small Brownian wobble, ~5 m per tick.
        self.location = self.location.offset(
            north_m=rng.gauss(0.0, 5.0), east_m=rng.gauss(0.0, 5.0)
        )

    def path_vector(self) -> Tuple[Tuple[float, LatLon], ...]:
        """Recent movement trace as exposed through `pingClient`."""
        fleet = self._fleet
        if fleet is not None:
            fleet.refresh_path(self)
        return tuple(self.path)

    def path_triples(self) -> Tuple[Tuple[float, float, float], ...]:
        """The path as flat ``(t, lat, lon)`` triples, memoized per move.

        This is the wire shape :class:`repro.api.models.CarView` carries;
        every client pinging in the same tick observes the identical
        tuple object.  Array-attached drivers serve the triples straight
        from the fleet's ring buffers (no deque rebuild).
        """
        fleet = self._fleet
        if fleet is not None:
            return fleet.path_triples_of(self)
        if self._path_cache is None:
            self._path_cache = tuple(
                (t, p.lat, p.lon) for t, p in self.path
            )
        return self._path_cache


# ----------------------------------------------------------------------
# Lazy array-backed location (see repro.marketplace.fleet_array)
# ----------------------------------------------------------------------
# When the engine steps drivers through a FleetArray (structure-of-arrays
# numpy state), positions advance in the arrays and the Driver objects go
# stale until something reads them.  The hooks below make that laziness
# invisible: `location` becomes a data descriptor that pulls the current
# row out of the attached FleetArray on read and pushes writes back into
# it, so dispatch, the ping endpoint, and every test see exactly the
# objects they always saw.  Detached drivers (`_fleet is None` — the
# scalar step path and standalone unit tests) pay one attribute
# indirection and nothing else.
#
# The property is assigned *after* the dataclass decorator has run so the
# generated __init__/__repr__/__eq__ treat `location` as the ordinary
# field they were built for; instance storage lives in __dict__["_loc"].

#: FleetArray the driver is attached to, or None (scalar mode).
Driver._fleet = None
#: Row of this driver in the attached FleetArray's arrays.
Driver._row = -1


def _location_get(self: Driver) -> LatLon:
    fleet = self._fleet
    if fleet is not None:
        fleet.refresh_location(self)
    return self.__dict__["_loc"]


def _location_set(self: Driver, value: LatLon) -> None:
    self.__dict__["_loc"] = value
    fleet = self._fleet
    if fleet is not None:
        fleet.location_written(self, value)


Driver.location = property(_location_get, _location_set)
