"""Calibrated city scenarios.

The two scenarios encode the contrasts the paper measured (§4.2):

* **SF has ~58 % more Ubers than Manhattan** (mostly UberX), yet *surges
  far more often* (no-surge 43 % of the time in SF vs 86 % in Manhattan)
  and higher (observed max 4.1 vs 2.8) — demand presses much harder on
  supply in SF, consistent with Uber carrying 71 % of SF "taxi" rides vs
  29 % in NYC.
* **Manhattan has more luxury cars** (XL/BLACK/SUV) and a sizeable UberT
  (ordinary taxi) population; type ranking in both cities is
  X >> BLACK > SUV > XL with a handful of rare types (~4 cars).
* **SF's 2am "last call" surge spike** and weekday morning-rush surge
  peaks; Manhattan surge builds from 3pm through evening rush, weekends
  peak noon-3pm (tourists).

Rates here are calibrated against the paper's reported magnitudes
(fulfilled demand ~100 rides/hour in midtown, EWT averaging ~3 minutes,
surge mean 1.07 in Manhattan vs 1.36 in SF) — see
``benchmarks/bench_fig08_timeseries.py`` and EXPERIMENTS.md for how close
each run lands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.geo.regions import CityRegion, downtown_sf, midtown_manhattan
from repro.marketplace.jitter import JitterParams
from repro.marketplace.rider import DiurnalProfile
from repro.marketplace.surge import SurgeParams
from repro.marketplace.types import CarType


@dataclass(frozen=True)
class DriverBehavior:
    """Supply-side behavioural constants."""

    speed_mps: float
    mean_session_s: float
    #: Relaxation time for the online pool to track its diurnal target.
    supply_tau_s: float
    #: Fractional boost to the online target per unit of surge above 1 —
    #: the paper found a small positive new-driver response (§5.5).
    surge_supply_incentive: float
    #: Probability per cruise decision that an idle driver relocates
    #: toward a neighbouring area surging >= 0.2 above their own.
    flock_probability: float
    #: Probability per cruise decision of heading toward a hotspot
    #: (otherwise the driver wanders).
    hotspot_attraction: float
    #: Seconds between idle-cruise decisions.
    cruise_decision_s: float = 60.0


@dataclass(frozen=True)
class BurstParams:
    """City-wide demand-burst process (events, weather, last call).

    An AR(1) level updated every surge interval::

        level <- 1 + rho * (level - 1) + N(0, sigma),  clamped

    Bursts persist for tens of minutes (rho ~ 0.75 keeps a shock alive
    for ~15 minutes), long enough for the surge engine's capped ramps to
    climb several steps before the burst passes — the staircase-up /
    collapse-down shape the paper's duration and jitter analyses expose.
    Uber's surge patent lists exactly such exogenous drivers ("weather,
    and road traffic", §2).
    """

    rho: float = 0.75
    sigma: float = 0.3
    floor: float = 0.3
    cap: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rho < 1.0:
            raise ValueError("rho must be in [0, 1)")
        if self.sigma < 0:
            raise ValueError("sigma cannot be negative")
        if not 0.0 < self.floor <= 1.0 <= self.cap:
            raise ValueError("need 0 < floor <= 1 <= cap")


@dataclass(frozen=True)
class ParallelParams:
    """Sharded round-serving knobs (see :mod:`repro.parallel.sharding`).

    Pure speed controls: whatever the values, served rounds are
    bit-identical to the serial pass (tier-1 enforced), so these tune
    throughput only.
    """

    #: Worker threads for the engine's shard pool.  ``None`` resolves to
    #: ``min(4, cpu_count)`` at engine construction; ``1`` forces the
    #: serial path.  An explicit ``parallel_workers`` engine argument
    #: overrides this.
    workers: int | None = None
    #: Minimum distance-matrix entries per shard — rounds smaller than
    #: this are served inline (thread dispatch would cost more than the
    #: kernel), and segments are never split finer than this floor.
    min_shard_elements: int = 32768
    #: Spatial shards for the fleet *state* tick (repro.parallel
    #: .partition + ShardedFleetState).  ``None`` resolves to
    #: ``min(4, cpu_count)`` at engine construction; ``1`` forces the
    #: serial reference path.  An explicit ``state_shards`` engine
    #: argument overrides this.
    state_shards: int | None = None
    #: Minimum mover rows before a tick is split across state shards —
    #: below this the whole tick runs inline (shard dispatch would cost
    #: more than the kernel).  Tests force ``1`` to exercise the merge
    #: path at toy scale.
    min_shard_rows: int = 2048
    #: Executor for the state-shard stripes: ``"thread"`` runs them on
    #: the engine's worker thread pool (the GIL-releasing ufuncs give
    #: real parallelism with zero setup), ``"process"`` runs them in
    #: worker processes over a shared-memory segment
    #: (:mod:`repro.parallel.shm`) — past-the-GIL scaling for
    #: 100k-driver metros.  Like every parallel knob this is a pure
    #: speed control: both executors are bit-identical to the serial
    #: kernel at every shard count.  An explicit ``shard_executor``
    #: engine argument overrides this.
    shard_executor: str = "thread"

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 (or None for auto)")
        if self.min_shard_elements < 1:
            raise ValueError("min_shard_elements must be >= 1")
        if self.state_shards is not None and self.state_shards < 1:
            raise ValueError(
                "state_shards must be >= 1 (or None for auto)"
            )
        if self.min_shard_rows < 1:
            raise ValueError("min_shard_rows must be >= 1")
        if self.shard_executor not in ("thread", "process"):
            raise ValueError(
                "shard_executor must be 'thread' or 'process'"
            )


@dataclass(frozen=True)
class CityConfig:
    """Everything the engine needs to simulate one city."""

    region: CityRegion
    fleet: Dict[CarType, int]
    online_fraction: DiurnalProfile
    demand_profile: DiurnalProfile
    peak_requests_per_hour: float
    type_mix: Dict[CarType, float]
    demand_elasticity: float
    wait_out_fraction: float
    driver: DriverBehavior
    surge: SurgeParams
    jitter: JitterParams
    start_weekday: int = 0
    burst: BurstParams = BurstParams()
    #: Sharded round-serving knobs (speed only, never behaviour).
    parallel: ParallelParams = ParallelParams()
    #: Weight of a priced-out (non-converted) request in the surge
    #: engine's demand signal.  Converted requests weigh 1.0; the
    #: operator still *sees* walked-away riders (app opens, declined
    #: quotes) but weighs them below placed requests.
    priced_out_demand_weight: float = 0.4

    def total_fleet(self) -> int:
        return sum(self.fleet.values())


# ----------------------------------------------------------------------
# Shared diurnal shapes
# ----------------------------------------------------------------------
def _weekday_demand() -> Tuple[Tuple[float, float], ...]:
    """Two rush-hour humps over a daytime plateau."""
    return (
        (0.0, 0.22), (2.0, 0.12), (4.0, 0.08), (6.0, 0.45), (8.0, 1.00),
        (10.0, 0.62), (12.0, 0.70), (14.0, 0.62), (16.0, 0.88), (18.0, 1.00),
        (20.0, 0.70), (22.0, 0.45),
    )


def _weekend_demand() -> Tuple[Tuple[float, float], ...]:
    """Midday tourist peak, busy nightlife evening."""
    return (
        (0.0, 0.50), (2.0, 0.35), (4.0, 0.10), (8.0, 0.25), (10.0, 0.55),
        (12.0, 0.95), (14.0, 1.00), (16.0, 0.80), (18.0, 0.75), (20.0, 0.80),
        (22.0, 0.70),
    )


def _sf_weekday_demand() -> Tuple[Tuple[float, float], ...]:
    """SF adds the 2am last-call spike the paper observed (§4.2)."""
    return (
        (0.0, 0.35), (1.8, 0.75), (2.2, 0.70), (3.0, 0.15), (5.0, 0.12),
        (6.0, 0.55), (8.0, 1.00), (10.0, 0.60), (12.0, 0.68), (14.0, 0.60),
        (16.0, 0.85), (18.0, 1.00), (20.0, 0.72), (22.0, 0.50),
    )


def _sf_weekend_demand() -> Tuple[Tuple[float, float], ...]:
    return (
        (0.0, 0.60), (1.8, 1.00), (2.2, 0.95), (3.0, 0.25), (6.0, 0.10),
        (9.0, 0.30), (12.0, 0.80), (14.0, 0.85), (17.0, 0.70), (20.0, 0.75),
        (22.0, 0.70),
    )


def _online_fraction() -> DiurnalProfile:
    """Fraction of the driver pool online through the day.

    Supply tracks demand loosely (drivers anticipate busy periods) but
    with less dynamic range — that mismatch is what creates surge windows.
    """
    weekday = (
        (0.0, 0.16), (3.0, 0.08), (5.0, 0.14), (7.0, 0.30), (9.0, 0.34),
        (12.0, 0.30), (15.0, 0.32), (18.0, 0.36), (21.0, 0.26), (23.0, 0.18),
    )
    weekend = (
        (0.0, 0.22), (3.0, 0.10), (6.0, 0.08), (9.0, 0.18), (12.0, 0.28),
        (15.0, 0.30), (18.0, 0.30), (21.0, 0.28), (23.0, 0.24),
    )
    return DiurnalProfile(weekday=weekday, weekend=weekend)


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def manhattan_config(
    jitter_probability: float = 0.25, start_weekday: int = 4
) -> CityConfig:
    """Midtown Manhattan, April 3-17 2015 analogue (campaign starts Friday).

    Surges rarely (no-surge ~86 %), max multiplier ~2.8, mean ~1.07.
    """
    fleet = {
        CarType.UBERX: 130,
        CarType.UBERXL: 14,
        CarType.UBERBLACK: 50,
        CarType.UBERSUV: 26,
        CarType.UBERT: 90,
        CarType.UBERFAMILY: 6,
        CarType.UBERRUSH: 6,
        CarType.UBERWAV: 5,
    }
    type_mix = {
        CarType.UBERX: 100.0,
        CarType.UBERXL: 4.0,
        CarType.UBERBLACK: 14.0,
        CarType.UBERSUV: 6.0,
        CarType.UBERT: 20.0,
        CarType.UBERFAMILY: 1.0,
        CarType.UBERRUSH: 1.0,
        CarType.UBERWAV: 0.5,
    }
    return CityConfig(
        region=midtown_manhattan(),
        fleet=fleet,
        online_fraction=_online_fraction(),
        demand_profile=DiurnalProfile(
            weekday=_weekday_demand(), weekend=_weekend_demand()
        ),
        peak_requests_per_hour=110.0,
        type_mix=type_mix,
        demand_elasticity=1.8,
        wait_out_fraction=0.5,
        driver=DriverBehavior(
            speed_mps=5.0,
            mean_session_s=2.0 * 3600.0,
            supply_tau_s=900.0,
            surge_supply_incentive=0.25,
            flock_probability=0.12,
            hotspot_attraction=0.55,
        ),
        surge=SurgeParams(
            gain=2.2,
            pressure_floor=0.55,
            noise_sigma=0.038,
            shared_noise_fraction=0.2,
            pressure_sharing=0.1,
            max_step_up=0.4,
            cap=3.0,
        ),
        jitter=JitterParams(probability=jitter_probability),
        start_weekday=start_weekday,
        burst=BurstParams(rho=0.75, sigma=0.3, cap=3.5),
    )


def sf_config(
    jitter_probability: float = 0.25, start_weekday: int = 5
) -> CityConfig:
    """Downtown SF, April 18 - May 2 2015 analogue (starts Saturday).

    58 % more cars than Manhattan but demand-strained: surging the
    majority of the time, mean multiplier ~1.36, observed max ~4.1.
    """
    fleet = {
        CarType.UBERX: 230,
        CarType.UBERXL: 10,
        CarType.UBERBLACK: 28,
        CarType.UBERSUV: 15,
        CarType.UBERFAMILY: 5,
        CarType.UBERPOOL: 20,
        CarType.UBERRUSH: 4,
        CarType.UBERWAV: 3,
    }
    type_mix = {
        CarType.UBERX: 100.0,
        CarType.UBERXL: 3.0,
        CarType.UBERBLACK: 8.0,
        CarType.UBERSUV: 4.0,
        CarType.UBERFAMILY: 1.0,
        CarType.UBERPOOL: 8.0,
        CarType.UBERRUSH: 0.8,
        CarType.UBERWAV: 0.4,
    }
    return CityConfig(
        region=downtown_sf(),
        fleet=fleet,
        online_fraction=_online_fraction(),
        demand_profile=DiurnalProfile(
            weekday=_sf_weekday_demand(), weekend=_sf_weekend_demand()
        ),
        peak_requests_per_hour=260.0,
        type_mix=type_mix,
        demand_elasticity=1.0,
        wait_out_fraction=0.5,
        driver=DriverBehavior(
            speed_mps=6.0,
            mean_session_s=2.0 * 3600.0,
            supply_tau_s=900.0,
            surge_supply_incentive=0.25,
            flock_probability=0.12,
            hotspot_attraction=0.55,
        ),
        surge=SurgeParams(
            gain=2.6,
            pressure_floor=0.30,
            ewt_weight=0.18,
            ewt_floor_minutes=3.0,
            noise_sigma=0.085,
            shared_noise_fraction=0.75,
            pressure_sharing=0.6,
            lockstep_probability=0.93,
            max_step_up=0.6,
            cap=4.2,
        ),
        jitter=JitterParams(probability=jitter_probability),
        start_weekday=start_weekday,
        burst=BurstParams(rho=0.78, sigma=0.45, cap=4.5),
    )
