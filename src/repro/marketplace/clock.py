"""Simulation clock.

All simulation time is *simulated seconds since campaign start* — the code
base never reads the wall clock, which keeps every run deterministic and
lets tests compress weeks into milliseconds.  Day 0 starts at midnight on a
configurable weekday so weekday/weekend demand profiles line up with the
paper's April 2015 measurement windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

SECONDS_PER_DAY = 86_400
SECONDS_PER_HOUR = 3_600

#: Rush-hour windows used by the Rush forecasting model (§5.4):
#: 6am-10am and 4pm-8pm.
MORNING_RUSH = (6.0, 10.0)
EVENING_RUSH = (16.0, 20.0)


@dataclass
class SimClock:
    """A fixed-step simulated clock.

    Parameters
    ----------
    start_weekday:
        0 = Monday ... 6 = Sunday; day 0 of the simulation has this
        weekday.  The paper's Manhattan window started Friday April 3 2015,
        so the Manhattan scenario defaults to 4.
    tick_seconds:
        Interval advanced by each :meth:`tick`.  The measurement clients
        ping every 5 s, so 5 s is the natural (and default) resolution.
    """

    start_weekday: int = 0
    tick_seconds: float = 5.0
    now: float = field(default=0.0)

    def __post_init__(self) -> None:
        if not 0 <= self.start_weekday <= 6:
            raise ValueError("start_weekday must be in 0..6")
        if self.tick_seconds <= 0:
            raise ValueError("tick_seconds must be positive")

    def tick(self) -> float:
        """Advance one step and return the new time."""
        self.now += self.tick_seconds
        return self.now

    @property
    def day_index(self) -> int:
        """Whole days elapsed since campaign start."""
        return int(self.now // SECONDS_PER_DAY)

    @property
    def weekday(self) -> int:
        """Current weekday, 0 = Monday ... 6 = Sunday."""
        return (self.start_weekday + self.day_index) % 7

    @property
    def is_weekend(self) -> bool:
        return self.weekday >= 5

    @property
    def hour_of_day(self) -> float:
        """Fractional hour within the current day, in [0, 24)."""
        return (self.now % SECONDS_PER_DAY) / SECONDS_PER_HOUR

    @property
    def is_rush_hour(self) -> bool:
        """Inside either rush window (§5.4's Rush model definition)."""
        h = self.hour_of_day
        return (
            MORNING_RUSH[0] <= h < MORNING_RUSH[1]
            or EVENING_RUSH[0] <= h < EVENING_RUSH[1]
        )

    def interval_index(self, interval_seconds: float = 300.0) -> int:
        """Index of the current fixed-length interval (5-minute default).

        Surge multipliers update on interval boundaries (§5.2), so both
        the surge engine and the audit pipeline bin time this way.
        """
        return int(self.now // interval_seconds)

    def seconds_into_interval(self, interval_seconds: float = 300.0) -> float:
        return self.now % interval_seconds

    def copy(self) -> "SimClock":
        return SimClock(
            start_weekday=self.start_weekday,
            tick_seconds=self.tick_seconds,
            now=self.now,
        )


def hour_to_seconds(hour: float) -> float:
    """Convert a fractional hour-of-day to seconds-of-day."""
    return hour * SECONDS_PER_HOUR
