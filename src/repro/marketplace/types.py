"""Car types and fare schedules.

Uber offers multiple services per city (§2).  The paper's analysis focuses
on UberX (by far the most common), but the measurement apparatus records
every type, and the type mix differs between cities (Manhattan has UberT —
ordinary taxis hailed through the app — which are *not* subject to surge).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict


class CarType(enum.Enum):
    """The Uber product types named in the paper (§2)."""

    UBERX = "uberX"
    UBERXL = "uberXL"
    UBERBLACK = "uberBLACK"
    UBERSUV = "uberSUV"
    UBERT = "uberT"
    UBERFAMILY = "uberFAMILY"
    UBERPOOL = "uberPOOL"
    UBERRUSH = "uberRUSH"
    UBERWAV = "uberWAV"

    @property
    def display_name(self) -> str:
        return self.value

    @property
    def is_low_cost(self) -> bool:
        """The paper's "low-priced Ubers": X, XL, FAMILY, and POOL (§4.1)."""
        return self in _LOW_COST

    @property
    def surge_eligible(self) -> bool:
        """UberT is an ordinary taxi and never surges (§4.2)."""
        return self is not CarType.UBERT


_LOW_COST = frozenset(
    {CarType.UBERX, CarType.UBERXL, CarType.UBERFAMILY, CarType.UBERPOOL}
)


@dataclass(frozen=True)
class FareSchedule:
    """Fare components for one car type (§2 "Surge Pricing").

    ``base_fare_usd`` is charged at pickup; distance and time accrue per
    mile and per minute; the total is floored at ``minimum_fare_usd`` and
    increased by ``booking_fee_usd``.  The surge multiplier applies to the
    metered portion (base + distance + time), not to the booking fee —
    matching Uber's published fare maths at the time.
    """

    base_fare_usd: float
    per_mile_usd: float
    per_minute_usd: float
    minimum_fare_usd: float
    booking_fee_usd: float = 0.0

    def fare(
        self,
        miles: float,
        minutes: float,
        surge_multiplier: float = 1.0,
    ) -> float:
        """Total fare in USD for a trip under a given surge multiplier."""
        if miles < 0 or minutes < 0:
            raise ValueError("trip distance and duration must be >= 0")
        if surge_multiplier <= 0.0:
            # Algorithmic surge never goes below 1 (the surge engine
            # quantizes into [1, cap]), but driver-set pricing allows
            # sub-base discounts, so fare maths only rejects nonsense.
            raise ValueError("multiplier must be positive")
        metered = (
            self.base_fare_usd
            + self.per_mile_usd * miles
            + self.per_minute_usd * minutes
        )
        metered = max(metered, self.minimum_fare_usd)
        return metered * surge_multiplier + self.booking_fee_usd

    def driver_payout(
        self, miles: float, minutes: float, surge_multiplier: float = 1.0
    ) -> float:
        """Driver's cut: Uber retains 20 % of each fare (§2)."""
        gross = self.fare(miles, minutes, surge_multiplier)
        return (gross - self.booking_fee_usd) * 0.8


#: 2015-era fare schedules (approximate published SF/NYC UberX rates).
FARE_TABLE: Dict[CarType, FareSchedule] = {
    CarType.UBERX: FareSchedule(2.00, 1.30, 0.26, 5.00, booking_fee_usd=1.00),
    CarType.UBERXL: FareSchedule(5.00, 2.15, 0.45, 8.00, booking_fee_usd=1.00),
    CarType.UBERBLACK: FareSchedule(8.00, 3.75, 0.65, 15.00),
    CarType.UBERSUV: FareSchedule(15.00, 4.50, 0.90, 25.00),
    CarType.UBERT: FareSchedule(2.50, 2.00, 0.40, 2.50),
    CarType.UBERFAMILY: FareSchedule(2.00, 1.30, 0.26, 5.00,
                                     booking_fee_usd=3.00),
    CarType.UBERPOOL: FareSchedule(1.50, 1.00, 0.20, 4.00,
                                   booking_fee_usd=1.00),
    CarType.UBERRUSH: FareSchedule(3.00, 2.50, 0.00, 7.00),
    CarType.UBERWAV: FareSchedule(2.00, 1.30, 0.26, 5.00),
}
