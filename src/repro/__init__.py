"""repro — a reproduction of "Peeking Beneath the Hood of Uber" (IMC 2015).

A complete, self-contained reimplementation of the paper's system:

* :mod:`repro.geo` — geographic substrate (coordinates, polygons, grids,
  the two city models);
* :mod:`repro.marketplace` — an agent-based ride-sharing marketplace with
  surge pricing, standing in for the 2015 Uber production service;
* :mod:`repro.api` — the observable API surface (`pingClient`, REST
  estimates, rate limits, the jitter bug's serving path);
* :mod:`repro.taxi` — synthetic NYC-taxi trace generation and replay for
  methodology validation;
* :mod:`repro.measurement` — the 43-client measurement apparatus and its
  calibration experiments;
* :mod:`repro.analysis` — the audit pipeline: supply/demand estimation,
  surge statistics, jitter detection, surge-area discovery,
  cross-correlation, forecasting, driver-transition analysis;
* :mod:`repro.strategy` — the surge-avoidance strategy;
* :mod:`repro.validation` — measured-vs-ground-truth scoring.

Quickstart::

    from repro.marketplace import manhattan_config, MarketplaceEngine
    from repro.measurement import Fleet, MarketplaceWorld, place_clients
    from repro.marketplace.types import CarType

    engine = MarketplaceEngine(manhattan_config(), seed=42)
    fleet = Fleet(
        place_clients(engine.config.region),
        car_types=[CarType.UBERX],
        ping_interval_s=30.0,
    )
    log = fleet.run(MarketplaceWorld(engine), duration_s=6 * 3600,
                    city="manhattan", warmup_s=6 * 3600)

See ``examples/`` for full scenarios and ``benchmarks/`` for the
per-figure reproduction harness.
"""

__version__ = "1.0.0"
