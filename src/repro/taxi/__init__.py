"""Ground-truth taxi substrate (validation, §3.5).

The paper validates its measurement methodology against the public 2013
NYC taxi trace: a simulator replays the trace and exposes the same
nearest-8 API as Uber's `pingClient`; if the fleet's estimates match the
trace's known supply and demand, the methodology is trusted on Uber too.

The original 170M-row trace is not redistributable here, so
:mod:`repro.taxi.generator` synthesizes a trace with the same structure
(per-medallion shifts, chained trips, diurnal rates, midtown geography) —
the validation experiment only needs *known* ground truth, not the
historical rides themselves.

:mod:`repro.taxi.replay` replays any trace (synthetic or real, the format
is the same) behind the :class:`repro.api.ping.PingServer` interface:
straight-line driving between points, IDs randomized each time a cab
becomes available, and a 3-hour idle cutoff, exactly as §3.5 describes.
"""

from repro.taxi.trace import TripRecord, read_trace, write_trace
from repro.taxi.generator import TaxiTraceGenerator, TaxiGeneratorParams
from repro.taxi.replay import TaxiReplayServer, TaxiGroundTruth
from repro.taxi.stats import TraceSummary, summarize_trace
from repro.taxi.tlc import TlcReadStats, read_tlc_csv

__all__ = [
    "TraceSummary",
    "summarize_trace",
    "TlcReadStats",
    "read_tlc_csv",
    "TripRecord",
    "read_trace",
    "write_trace",
    "TaxiTraceGenerator",
    "TaxiGeneratorParams",
    "TaxiReplayServer",
    "TaxiGroundTruth",
]
