"""Taxi-trace replayer with a `pingClient`-compatible API (§3.5).

The paper validates its methodology by replaying the NYC taxi trace
through "an API in our simulator that offers the same functionality as
Uber's pingClient: it returns the eight closest taxis to a given
geolocation.  Just as with Uber, the ID for each taxi is randomized each
time it becomes available."

Replay semantics:

* A taxi is **visible** between a dropoff and its next pickup — while
  carrying a passenger it is off the map, so its next pickup manifests as
  a *death* to observers, exactly the booking signal the methodology
  counts as fulfilled demand.
* The cab **drives in a straight line** from the dropoff point toward the
  next pickup point across the gap.
* Gaps longer than 3 hours mean the cab went **offline** (this filter
  removes ~5 % of sessions in the real data).
* Availability IDs are randomized per segment.

Ground truth (known supply and deaths per interval) comes straight from
the trace, so the validation experiment can score the fleet's estimates —
the paper reports 97 % of cars and 95 % of deaths captured (Fig 4).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geo.index import PointIndex
from repro.geo.latlon import LatLon
from repro.api.models import CarView, PingReply, TypeStatus
from repro.api.ping import PingServer
from repro.marketplace.types import CarType
from repro.taxi.trace import TripRecord

#: Idle gaps longer than this mean the taxi went offline (§3.5).
OFFLINE_GAP_S = 3.0 * 3600.0

#: Metres of northing per degree of latitude (local scale factors are
#: computed per replayer from its trace's mean latitude).
_DEG_LAT_M = 111_194.9


@dataclass(frozen=True)
class AvailabilitySegment:
    """One visible (idle/cruising) stretch of a taxi's day."""

    medallion: int
    token: str
    start_s: float
    end_s: float
    start_loc: LatLon
    end_loc: LatLon
    #: Why the segment ended: "booked" (next pickup) or "offline".
    end_reason: str

    def position_at(self, t: float) -> LatLon:
        if not self.start_s <= t <= self.end_s:
            raise ValueError("time outside segment")
        span = self.end_s - self.start_s
        frac = 0.0 if span <= 0 else (t - self.start_s) / span
        return LatLon(
            self.start_loc.lat
            + (self.end_loc.lat - self.start_loc.lat) * frac,
            self.start_loc.lon
            + (self.end_loc.lon - self.start_loc.lon) * frac,
        )


@dataclass(frozen=True)
class TaxiGroundTruth:
    """Known per-interval supply and demand, straight from the trace.

    ``distinct_cabs`` counts *availability segments* active in the
    interval — the same identity granularity the measurement sees, since
    IDs are randomized each time a cab becomes available (§3.5).
    """

    interval_index: int
    distinct_cabs: int
    bookings: int
    offline_events: int


def build_segments(
    trips: Sequence[TripRecord], seed: int = 0
) -> List[AvailabilitySegment]:
    """Derive availability segments from a pickup/dropoff trace."""
    rng = random.Random(seed)
    by_taxi: Dict[int, List[TripRecord]] = {}
    for trip in trips:
        by_taxi.setdefault(trip.medallion, []).append(trip)
    segments: List[AvailabilitySegment] = []
    for medallion, taxi_trips in by_taxi.items():
        taxi_trips.sort()
        for current, following in zip(taxi_trips, taxi_trips[1:]):
            gap = following.pickup_s - current.dropoff_s
            if gap < 0:
                # Overlapping records do occur in real traces; skip them.
                continue
            if gap > OFFLINE_GAP_S:
                # Cab went home: visible briefly, then offline.  We keep a
                # short post-dropoff segment so the disappearance is
                # observable (it is one of the three death causes §3.3
                # enumerates).
                segments.append(
                    AvailabilitySegment(
                        medallion=medallion,
                        token=f"{rng.getrandbits(64):016x}",
                        start_s=current.dropoff_s,
                        end_s=current.dropoff_s + 60.0,
                        start_loc=current.dropoff,
                        end_loc=current.dropoff,
                        end_reason="offline",
                    )
                )
                continue
            segments.append(
                AvailabilitySegment(
                    medallion=medallion,
                    token=f"{rng.getrandbits(64):016x}",
                    start_s=current.dropoff_s,
                    end_s=following.pickup_s,
                    start_loc=current.dropoff,
                    end_loc=following.pickup,
                    end_reason="booked",
                )
            )
    segments.sort(key=lambda s: s.start_s)
    return segments


class TaxiReplayServer(PingServer):
    """Replays a trace behind the `pingClient` interface.

    The replayer owns its clock; the measurement fleet advances it via
    :meth:`advance`.  Position snapshots are vectorized per timestep so a
    172-client fleet stays tractable.
    """

    def __init__(
        self,
        trips: Sequence[TripRecord],
        seed: int = 0,
        speed_mps: float = 5.0,
        nearest_k: int = 8,
        use_spatial_index: bool = True,
    ) -> None:
        self.segments = build_segments(trips, seed=seed)
        self.speed_mps = speed_mps
        self.nearest_k = nearest_k
        self.use_spatial_index = use_spatial_index
        self._trips = list(trips)
        self._now = 0.0
        self._next_idx = 0  # next segment (by start time) to activate
        self._active: Dict[int, AvailabilitySegment] = {}
        self._snapshot_time: Optional[float] = None
        self._snap_lat: Optional[np.ndarray] = None
        self._snap_lon: Optional[np.ndarray] = None
        self._snap_segments: List[AvailabilitySegment] = []
        self._snap_index: Optional[PointIndex] = None
        if self._trips:
            mean_lat = sum(t.pickup.lat for t in self._trips) / len(
                self._trips
            )
        else:
            mean_lat = 0.0
        self._deg_lon_m = _DEG_LAT_M * np.cos(np.radians(mean_lat))

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    def current_time(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        """Move the replay clock forward (monotonic only)."""
        if dt < 0:
            raise ValueError("the replay clock cannot run backwards")
        self._now += dt
        self._refresh_active()

    def seek(self, t: float) -> None:
        """Jump forward to absolute time *t*."""
        if t < self._now:
            raise ValueError("the replay clock cannot run backwards")
        self._now = t
        self._refresh_active()

    def _refresh_active(self) -> None:
        now = self._now
        while (
            self._next_idx < len(self.segments)
            and self.segments[self._next_idx].start_s <= now
        ):
            seg = self.segments[self._next_idx]
            if seg.end_s > now:
                self._active[id(seg)] = seg
            self._next_idx += 1
        dead = [key for key, seg in self._active.items() if seg.end_s <= now]
        for key in dead:
            del self._active[key]
        self._snapshot_time = None

    def _ensure_snapshot(self) -> None:
        if self._snapshot_time == self._now:
            return
        segs = list(self._active.values())
        self._snap_segments = segs
        n = len(segs)
        lats = np.empty(n)
        lons = np.empty(n)
        now = self._now
        for i, seg in enumerate(segs):
            span = seg.end_s - seg.start_s
            frac = 0.0 if span <= 0 else (now - seg.start_s) / span
            lats[i] = (
                seg.start_loc.lat
                + (seg.end_loc.lat - seg.start_loc.lat) * frac
            )
            lons[i] = (
                seg.start_loc.lon
                + (seg.end_loc.lon - seg.start_loc.lon) * frac
            )
        self._snap_lat = lats
        self._snap_lon = lons
        self._snap_index = None
        if self.use_spatial_index and n:
            # One grid build per timestep serves every client's ping —
            # the fleet shares the snapshot, so each of the ~172 pings
            # probes a handful of buckets instead of scanning all cabs.
            index = PointIndex(
                cell_m=400.0,
                metric="planar",
                deg_lat_m=_DEG_LAT_M,
                deg_lon_m=float(self._deg_lon_m),
            )
            for i in range(n):
                index.insert(i, LatLon(float(lats[i]), float(lons[i])))
            self._snap_index = index
        self._snapshot_time = now

    # ------------------------------------------------------------------
    # pingClient
    # ------------------------------------------------------------------
    def ping(
        self,
        account_id: str,
        location: LatLon,
        car_types: Optional[Sequence[CarType]] = None,
    ) -> PingReply:
        self._ensure_snapshot()
        assert self._snap_lat is not None and self._snap_lon is not None
        n = len(self._snap_segments)
        cars: Tuple[CarView, ...] = ()
        ewt: Optional[float] = None
        if n > 0:
            k = min(self.nearest_k, n)
            if self._snap_index is not None:
                # Expanding-ring query over the snapshot grid.  The
                # planar metric reproduces the vectorized dx*dx + dy*dy
                # floats exactly and ties break by segment index, the
                # same ordering the brute path below produces.
                hits = self._snap_index.nearest_k(location, k)
                order = [int(pid) for _, pid, _ in hits]
                nearest2 = float(hits[0][0])
            else:
                dy = (self._snap_lat - location.lat) * _DEG_LAT_M
                dx = (self._snap_lon - location.lon) * self._deg_lon_m
                dist2 = dx * dx + dy * dy
                # lexsort, not argpartition: ties (co-located cabs) must
                # break by segment index so that the flag only changes
                # speed, never which IDs a client observes.
                idx = np.lexsort((np.arange(n), dist2))[:k]
                order = [int(i) for i in idx]
                nearest2 = float(dist2[order[0]])
            views = []
            for i in order:
                seg = self._snap_segments[i]
                pos = LatLon(
                    float(self._snap_lat[i]),
                    float(self._snap_lon[i]),
                )
                views.append(
                    CarView(
                        car_id=seg.token,
                        location=pos,
                        path=((self._now, pos.lat, pos.lon),),
                    )
                )
            cars = tuple(views)
            nearest_m = math.sqrt(nearest2)
            ewt = max(1.0, nearest_m / self.speed_mps / 60.0)
        status = TypeStatus(
            car_type=CarType.UBERT,
            cars=cars,
            ewt_minutes=ewt,
            surge_multiplier=1.0,  # ordinary taxis never surge
        )
        return PingReply(
            timestamp=self._now, location=location, statuses=(status,)
        )

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    def ground_truth(
        self,
        start_s: float,
        end_s: float,
        interval_s: float = 300.0,
        interior_of=None,
        edge_margin_m: float = 0.0,
    ) -> List[TaxiGroundTruth]:
        """Known supply/demand per interval over [start_s, end_s).

        * supply  = distinct availability segments active at some point
          in the interval (IDs randomize per segment, so this is the
          identity granularity an observer can count);
        * bookings = segments that ended with a pickup in the interval
          (the "deaths" the fleet tries to count);
        * offline_events = segments that ended by going offline.

        With *interior_of* (a :class:`repro.geo.polygon.Polygon`) and a
        positive *edge_margin_m*, bookings within the margin of the
        boundary are excluded — mirroring the measurement methodology's
        conservative edge filter, so validation compares like with like.
        """
        if end_s <= start_s:
            raise ValueError("end must be after start")
        n_bins = int(np.ceil((end_s - start_s) / interval_s))
        cabs: List[set] = [set() for _ in range(n_bins)]
        bookings = [0] * n_bins
        offline = [0] * n_bins
        for seg in self.segments:
            if seg.end_s <= start_s or seg.start_s >= end_s:
                continue
            first = max(0, int((seg.start_s - start_s) // interval_s))
            last = min(
                n_bins - 1, int((seg.end_s - start_s) // interval_s)
            )
            for b in range(first, last + 1):
                cabs[b].add(seg.token)
            if start_s <= seg.end_s < end_s:
                b = int((seg.end_s - start_s) // interval_s)
                if seg.end_reason == "booked":
                    if (
                        interior_of is not None
                        and edge_margin_m > 0.0
                        and interior_of.distance_to_boundary_m(seg.end_loc)
                        <= edge_margin_m
                    ):
                        continue
                    bookings[b] += 1
                else:
                    offline[b] += 1
        return [
            TaxiGroundTruth(
                interval_index=int(start_s // interval_s) + b,
                distinct_cabs=len(cabs[b]),
                bookings=bookings[b],
                offline_events=offline[b],
            )
            for b in range(n_bins)
        ]
