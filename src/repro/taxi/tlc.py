"""Reading the real 2013 NYC TLC trip data.

The paper's ground truth is the public "taxi trip data" release: CSV
files with one row per ride, medallion-keyed, with pickup/dropoff
datetimes and coordinates [22].  This module converts that schema into
:class:`repro.taxi.trace.TripRecord` streams, so anyone holding the real
files can run the Fig 4 validation against actual 2013 data instead of
the synthetic trace.

Only the columns the replayer needs are read; rows with the release's
known defects (zeroed coordinates, negative durations, swapped lat/lon)
are dropped and counted.  Medallion hashes are interned to dense ints.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from datetime import datetime
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Union

from repro.geo.latlon import LatLon
from repro.geo.polygon import BoundingBox
from repro.taxi.trace import TripRecord

#: Column names used by the 2013 release (trip_data_*.csv).
_MEDALLION = "medallion"
_PICKUP_DT = "pickup_datetime"
_DROPOFF_DT = "dropoff_datetime"
_PICKUP_LON = "pickup_longitude"
_PICKUP_LAT = "pickup_latitude"
_DROPOFF_LON = "dropoff_longitude"
_DROPOFF_LAT = "dropoff_latitude"

_REQUIRED = (
    _MEDALLION, _PICKUP_DT, _DROPOFF_DT,
    _PICKUP_LON, _PICKUP_LAT, _DROPOFF_LON, _DROPOFF_LAT,
)

#: Coordinates must fall in the NYC metro box or the row is corrupt.
NYC_BOX = BoundingBox(south=40.45, west=-74.35, north=41.05, east=-73.55)

_TIME_FORMAT = "%Y-%m-%d %H:%M:%S"


@dataclass
class TlcReadStats:
    """What happened while reading a TLC file."""

    rows: int = 0
    kept: int = 0
    bad_coordinates: int = 0
    bad_times: int = 0
    outside_region: int = 0
    medallions: int = 0


def _parse_time(text: str) -> Optional[datetime]:
    try:
        return datetime.strptime(text, _TIME_FORMAT)
    except ValueError:
        return None


def read_tlc_rows(
    rows: Iterable[Dict[str, str]],
    epoch: Optional[datetime] = None,
    region: Optional[BoundingBox] = None,
    stats: Optional[TlcReadStats] = None,
) -> Iterator[TripRecord]:
    """Convert TLC dict-rows into trip records.

    *epoch* anchors simulated time zero (defaults to the first valid
    pickup, truncated to midnight so diurnal analysis lines up).
    *region* restricts to trips that start **and** end inside a box —
    pass the measurement region's box to pre-filter to midtown.
    """
    stats = stats if stats is not None else TlcReadStats()
    medallion_ids: Dict[str, int] = {}
    for row in rows:
        stats.rows += 1
        pickup_dt = _parse_time(row.get(_PICKUP_DT, ""))
        dropoff_dt = _parse_time(row.get(_DROPOFF_DT, ""))
        if pickup_dt is None or dropoff_dt is None or (
            dropoff_dt < pickup_dt
        ):
            stats.bad_times += 1
            continue
        try:
            pickup = LatLon(
                float(row[_PICKUP_LAT]), float(row[_PICKUP_LON])
            )
            dropoff = LatLon(
                float(row[_DROPOFF_LAT]), float(row[_DROPOFF_LON])
            )
        except (KeyError, ValueError):
            stats.bad_coordinates += 1
            continue
        if not (NYC_BOX.contains(pickup) and NYC_BOX.contains(dropoff)):
            stats.bad_coordinates += 1
            continue
        if region is not None and not (
            region.contains(pickup) and region.contains(dropoff)
        ):
            stats.outside_region += 1
            continue
        if epoch is None:
            epoch = pickup_dt.replace(hour=0, minute=0, second=0)
        medallion = medallion_ids.setdefault(
            row[_MEDALLION], len(medallion_ids) + 1
        )
        stats.kept += 1
        yield TripRecord(
            medallion=medallion,
            pickup_s=(pickup_dt - epoch).total_seconds(),
            dropoff_s=(dropoff_dt - epoch).total_seconds(),
            pickup=pickup,
            dropoff=dropoff,
        )
    stats.medallions = len(medallion_ids)


def read_tlc_csv(
    path: Union[str, Path],
    region: Optional[BoundingBox] = None,
    epoch: Optional[datetime] = None,
    max_rows: Optional[int] = None,
) -> tuple:
    """Read a 2013-format TLC CSV; returns ``(trips, stats)``.

    Raises :class:`ValueError` when the header lacks the required
    columns (e.g. someone passes the trip_fare file by mistake).
    """
    stats = TlcReadStats()
    with open(path, newline="") as f:
        reader = csv.DictReader(f, skipinitialspace=True)
        if reader.fieldnames is None:
            raise ValueError("empty file")
        fields = [name.strip() for name in reader.fieldnames]
        missing = [c for c in _REQUIRED if c not in fields]
        if missing:
            raise ValueError(
                f"not a 2013 TLC trip_data file; missing {missing}"
            )
        rows: Iterator[Dict[str, str]] = (
            {k.strip(): v for k, v in row.items() if k}
            for row in reader
        )
        if max_rows is not None:
            import itertools
            rows = itertools.islice(rows, max_rows)
        trips = sorted(
            read_tlc_rows(rows, epoch=epoch, region=region, stats=stats)
        )
    return trips, stats
