"""Synthetic 2013-style NYC taxi trace generation.

Substitutes for the public NYC trace (which we cannot ship).  Each
medallion works one or two daily shifts; within a shift it chains trips:
pickup near the previous dropoff, trip length drawn from a city-scale
distribution, then an idle gap whose mean follows the inverse of the
diurnal demand level (busy hours = short gaps).  That chaining is what
gives real taxi data its structure — and it is exactly the structure the
replayer's availability segments and the fleet's death-counting must
handle.

Taxi density is calibrated to the paper's observation that midtown has an
order of magnitude more taxis than Ubers (§4.2), scaled to keep replay
tractable.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.geo.latlon import LatLon
from repro.geo.regions import CityRegion, midtown_manhattan
from repro.marketplace.clock import SECONDS_PER_DAY
from repro.marketplace.rider import DiurnalProfile
from repro.taxi.trace import TripRecord


def _taxi_diurnal() -> DiurnalProfile:
    """NYC taxi activity: strong day plateau, deep 4-5am trough."""
    weekday = (
        (0.0, 0.45), (2.0, 0.25), (5.0, 0.12), (7.0, 0.75), (9.0, 1.00),
        (12.0, 0.85), (15.0, 0.80), (18.0, 1.00), (21.0, 0.80), (23.0, 0.55),
    )
    weekend = (
        (0.0, 0.70), (3.0, 0.40), (6.0, 0.10), (10.0, 0.55), (13.0, 0.85),
        (17.0, 0.80), (20.0, 0.90), (23.0, 0.80),
    )
    return DiurnalProfile(weekday=weekday, weekend=weekend)


@dataclass(frozen=True)
class TaxiGeneratorParams:
    """Generator knobs.

    ``fleet_size`` medallions; each works ``shift_hours``-long shifts
    starting around 7am and/or 5pm (the NYC two-shift system).  Idle gaps
    average ``idle_mean_busy_s`` at peak demand, stretched by the inverse
    diurnal level off-peak.
    """

    fleet_size: int = 700
    days: float = 7.0
    shift_hours: float = 9.0
    speed_mps: float = 5.0
    idle_mean_busy_s: float = 420.0
    min_trip_m: float = 400.0
    start_weekday: int = 3  # April 4 2013 was a Thursday
    trip_sigma: float = 0.65  # lognormal shape of trip distances


class TaxiTraceGenerator:
    """Generates a synthetic trace for one city region."""

    def __init__(
        self,
        params: Optional[TaxiGeneratorParams] = None,
        region: Optional[CityRegion] = None,
        seed: int = 0,
    ) -> None:
        self.params = params if params is not None else TaxiGeneratorParams()
        self.region = region if region is not None else midtown_manhattan()
        self.rng = random.Random(seed)
        self.profile = _taxi_diurnal()

    # ------------------------------------------------------------------
    def _sample_point(self) -> LatLon:
        """Uniform point in the region with a mild hotspot tilt."""
        rng = self.rng
        box = self.region.bounding_box
        if self.region.hotspots and rng.random() < 0.5:
            spot = rng.choice(self.region.hotspots)
            for _ in range(16):
                p = spot.location.offset(
                    north_m=rng.gauss(0.0, 500.0),
                    east_m=rng.gauss(0.0, 500.0),
                )
                if self.region.boundary.contains(p):
                    return p
        for _ in range(32):
            p = LatLon(
                rng.uniform(box.south, box.north),
                rng.uniform(box.west, box.east),
            )
            if self.region.boundary.contains(p):
                return p
        return box.center

    def _next_pickup(self, near: LatLon) -> LatLon:
        """Next fare hails close to where the last one got out."""
        rng = self.rng
        for _ in range(16):
            p = near.offset(
                north_m=rng.gauss(0.0, 300.0), east_m=rng.gauss(0.0, 300.0)
            )
            if self.region.boundary.contains(p):
                return p
        return self._sample_point()

    def _trip_dropoff(self, pickup: LatLon) -> LatLon:
        """Dropoff at a lognormal distance in a random direction."""
        rng = self.rng
        p = self.params
        for _ in range(16):
            dist = p.min_trip_m * math.exp(rng.gauss(0.6, p.trip_sigma))
            angle = rng.uniform(0.0, 2.0 * math.pi)
            q = pickup.offset(
                north_m=dist * math.cos(angle), east_m=dist * math.sin(angle)
            )
            if self.region.boundary.contains(q):
                return q
        return self._sample_point()

    def _idle_gap_s(self, t: float, weekday0: int) -> float:
        day = int(t // SECONDS_PER_DAY)
        hour = (t % SECONDS_PER_DAY) / 3600.0
        is_weekend = (weekday0 + day) % 7 >= 5
        level = max(0.05, self.profile.level(hour, is_weekend))
        return self.rng.expovariate(level / self.params.idle_mean_busy_s)

    # ------------------------------------------------------------------
    def generate(self) -> List[TripRecord]:
        """Produce the full trace, pickup-time sorted."""
        p = self.params
        trips: List[TripRecord] = []
        horizon = p.days * SECONDS_PER_DAY
        for medallion in range(1, p.fleet_size + 1):
            trips.extend(self._generate_medallion(medallion, horizon))
        trips.sort()
        return trips

    def _generate_medallion(
        self, medallion: int, horizon: float
    ) -> List[TripRecord]:
        rng = self.rng
        p = self.params
        trips: List[TripRecord] = []
        # Day-shift or night-shift cab, fixed for the medallion's life.
        shift_start_hour = 7.0 if rng.random() < 0.6 else 17.0
        day = 0
        while day * SECONDS_PER_DAY < horizon:
            start = (
                day * SECONDS_PER_DAY
                + (shift_start_hour + rng.gauss(0.0, 0.75)) * 3600.0
            )
            end = start + p.shift_hours * 3600.0 * rng.uniform(0.8, 1.1)
            t = start
            location = self._sample_point()
            while t < min(end, horizon):
                t += self._idle_gap_s(t, p.start_weekday)
                if t >= min(end, horizon):
                    break
                pickup = self._next_pickup(location)
                dropoff = self._trip_dropoff(pickup)
                duration = max(
                    120.0, pickup.fast_distance_m(dropoff) / p.speed_mps
                )
                trips.append(
                    TripRecord(
                        medallion=medallion,
                        pickup_s=t,
                        dropoff_s=t + duration,
                        pickup=pickup,
                        dropoff=dropoff,
                    )
                )
                t += duration
                location = dropoff
            day += 1
        return trips
