"""Trace summary statistics.

When substituting a synthetic trace for the real 2013 release (or
checking a real file someone loaded through :mod:`repro.taxi.tlc`),
these summaries are what you compare: activity by hour, fleet
utilization, trip length structure, and idle-gap structure — the
quantities that drive everything the replayer exposes to the
measurement apparatus.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.marketplace.clock import SECONDS_PER_DAY
from repro.taxi.replay import OFFLINE_GAP_S
from repro.taxi.trace import TripRecord


@dataclass(frozen=True)
class TraceSummary:
    """Headline statistics of one trip trace."""

    trips: int
    medallions: int
    days: float
    trips_per_medallion_per_day: float
    median_trip_duration_s: float
    median_trip_distance_m: float
    median_idle_gap_s: float
    busiest_hour: int
    quietest_hour: int

    def describe(self) -> str:
        return (
            f"{self.trips} trips by {self.medallions} medallions over "
            f"{self.days:.1f} days "
            f"({self.trips_per_medallion_per_day:.1f} trips/cab/day); "
            f"median trip {self.median_trip_duration_s / 60:.1f} min / "
            f"{self.median_trip_distance_m:.0f} m; median idle gap "
            f"{self.median_idle_gap_s / 60:.1f} min; busiest hour "
            f"{self.busiest_hour}h, quietest {self.quietest_hour}h"
        )


def trips_by_hour(trips: Sequence[TripRecord]) -> Dict[int, int]:
    """Pickup counts per hour of day."""
    counts: Dict[int, int] = {h: 0 for h in range(24)}
    for trip in trips:
        hour = int((trip.pickup_s % SECONDS_PER_DAY) // 3600)
        counts[hour] += 1
    return counts


def idle_gaps(trips: Sequence[TripRecord]) -> List[float]:
    """Within-shift gaps between a dropoff and the next pickup.

    Gaps beyond the replayer's 3-hour offline cutoff are excluded —
    they are shift boundaries, not idle time.
    """
    by_taxi: Dict[int, List[TripRecord]] = {}
    for trip in trips:
        by_taxi.setdefault(trip.medallion, []).append(trip)
    gaps: List[float] = []
    for taxi_trips in by_taxi.values():
        taxi_trips.sort()
        for a, b in zip(taxi_trips, taxi_trips[1:]):
            gap = b.pickup_s - a.dropoff_s
            if 0.0 <= gap <= OFFLINE_GAP_S:
                gaps.append(gap)
    return gaps


def summarize_trace(trips: Sequence[TripRecord]) -> TraceSummary:
    """Compute the headline statistics of a trace."""
    if not trips:
        raise ValueError("empty trace")
    medallions = {t.medallion for t in trips}
    start = min(t.pickup_s for t in trips)
    end = max(t.dropoff_s for t in trips)
    days = max((end - start) / SECONDS_PER_DAY, 1e-9)
    hourly = trips_by_hour(trips)
    gaps = idle_gaps(trips)
    return TraceSummary(
        trips=len(trips),
        medallions=len(medallions),
        days=days,
        trips_per_medallion_per_day=(
            len(trips) / len(medallions) / days
        ),
        median_trip_duration_s=statistics.median(
            t.duration_s for t in trips
        ),
        median_trip_distance_m=statistics.median(
            t.pickup.fast_distance_m(t.dropoff) for t in trips
        ),
        median_idle_gap_s=(
            statistics.median(gaps) if gaps else float("nan")
        ),
        busiest_hour=max(hourly, key=lambda h: hourly[h]),
        quietest_hour=min(hourly, key=lambda h: hourly[h]),
    )


def compare_traces(
    a: TraceSummary, b: TraceSummary
) -> List[Tuple[str, float, float, float]]:
    """(metric, a, b, ratio) rows for two summaries.

    Ratio is b/a; 1.0 means the traces agree on that dimension.
    """
    rows = []
    for name, attr in (
        ("trips/cab/day", "trips_per_medallion_per_day"),
        ("median trip s", "median_trip_duration_s"),
        ("median trip m", "median_trip_distance_m"),
        ("median idle s", "median_idle_gap_s"),
    ):
        va = getattr(a, attr)
        vb = getattr(b, attr)
        rows.append((name, va, vb, vb / va if va else float("inf")))
    return rows
