"""Taxi trip records and trace (de)serialization.

The 2013 NYC trace is a table of timestamped, geolocated pickups and
dropoffs keyed by a per-taxi medallion ID (§3.5).  We keep the same
schema, with times in simulated seconds, and serialize to a simple CSV
dialect so traces can be generated once and replayed from disk.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Union

from repro.geo.latlon import LatLon

_FIELDS = (
    "medallion",
    "pickup_s",
    "dropoff_s",
    "pickup_lat",
    "pickup_lon",
    "dropoff_lat",
    "dropoff_lon",
)


@dataclass(frozen=True, order=True)
class TripRecord:
    """One taxi trip: where and when a passenger was carried."""

    pickup_s: float
    medallion: int
    dropoff_s: float
    pickup: LatLon
    dropoff: LatLon

    def __post_init__(self) -> None:
        if self.dropoff_s < self.pickup_s:
            raise ValueError("trip cannot end before it starts")

    @property
    def duration_s(self) -> float:
        return self.dropoff_s - self.pickup_s

    def to_row(self) -> List[str]:
        return [
            str(self.medallion),
            f"{self.pickup_s:.1f}",
            f"{self.dropoff_s:.1f}",
            f"{self.pickup.lat:.6f}",
            f"{self.pickup.lon:.6f}",
            f"{self.dropoff.lat:.6f}",
            f"{self.dropoff.lon:.6f}",
        ]

    @classmethod
    def from_row(cls, row: List[str]) -> "TripRecord":
        return cls(
            medallion=int(row[0]),
            pickup_s=float(row[1]),
            dropoff_s=float(row[2]),
            pickup=LatLon(float(row[3]), float(row[4])),
            dropoff=LatLon(float(row[5]), float(row[6])),
        )


def write_trace(
    trips: Iterable[TripRecord], path: Union[str, Path]
) -> int:
    """Write a trace to CSV; returns the number of rows written."""
    count = 0
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(_FIELDS)
        for trip in trips:
            writer.writerow(trip.to_row())
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> List[TripRecord]:
    """Read a trace written by :func:`write_trace`."""
    trips: List[TripRecord] = []
    with open(path, newline="") as f:
        reader = csv.reader(f)
        header = next(reader, None)
        if header != list(_FIELDS):
            raise ValueError(f"unrecognized trace header: {header!r}")
        for row in reader:
            trips.append(TripRecord.from_row(row))
    return trips
