"""The surge-avoidance strategy (§6).

"Suppose a user observes that the surge multiplier at their current
location is m0, and there is a set of adjacent surge areas A.  We can use
the Uber API to query the surge multiplier m_a and EWT e_a for each
a ∈ A, as well as the walking time w_a to each area.  If m_a < m0 and
w_a <= e_a for some a, then ... the user could reserve an Uber
immediately at a lower price, and walk to the pickup point in the
adjacent area before the car arrives."

Unlike contemporary startups, the strategy leverages *precise knowledge
of surge areas* (from :mod:`repro.analysis.areas`) and EWTs.  Walking
speed is the paper's 83 m/min.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geo.latlon import LatLon, walking_minutes
from repro.geo.regions import CityRegion, SurgeAreaDef
from repro.api.rest import RestApi
from repro.marketplace.types import CarType
from repro.measurement.fleet import World


@dataclass(frozen=True)
class AvoidanceOption:
    """One candidate adjacent-area pickup."""

    area_id: int
    pickup_point: LatLon
    multiplier: float
    ewt_minutes: Optional[float]
    walk_minutes: float

    @property
    def feasible_given(self) -> bool:
        """Car would still be waiting when the passenger arrives."""
        return (
            self.ewt_minutes is not None
            and self.walk_minutes <= self.ewt_minutes
        )


@dataclass(frozen=True)
class AvoidanceOutcome:
    """Result of one strategy evaluation at one place and time."""

    t: float
    origin: LatLon
    origin_multiplier: float
    best: Optional[AvoidanceOption]
    options: Tuple[AvoidanceOption, ...]

    @property
    def saved(self) -> bool:
        return self.best is not None

    @property
    def reduction(self) -> float:
        """Multiplier reduction achieved (0 when no feasible option)."""
        if self.best is None:
            return 0.0
        return self.origin_multiplier - self.best.multiplier


class SurgeAvoider:
    """Evaluates the walk-to-adjacent-area strategy via the REST API."""

    def __init__(
        self,
        api: RestApi,
        region: CityRegion,
        account_id: str = "avoider",
        pickup_inset_m: float = 40.0,
    ) -> None:
        self.api = api
        self.region = region
        self.account_id = account_id
        self.pickup_inset_m = pickup_inset_m
        self._adjacency = region.adjacency()

    def _pickup_point_in(
        self, area: SurgeAreaDef, origin: LatLon
    ) -> LatLon:
        """Nearest point of *area* to the user, nudged inside.

        The nudge (toward the area centroid) keeps the pickup pin
        strictly inside the target surge area — a pin exactly on the
        border could price at either area.
        """
        edge_point = area.polygon.closest_boundary_point(origin)
        centroid = area.polygon.centroid()
        dist = edge_point.fast_distance_m(centroid)
        if dist <= self.pickup_inset_m:
            return centroid
        frac = self.pickup_inset_m / dist
        return LatLon(
            edge_point.lat + (centroid.lat - edge_point.lat) * frac,
            edge_point.lon + (centroid.lon - edge_point.lon) * frac,
        )

    def evaluate(
        self,
        origin: LatLon,
        car_type: CarType = CarType.UBERX,
        t: Optional[float] = None,
    ) -> AvoidanceOutcome:
        """Check every adjacent area for a cheaper feasible pickup.

        Issues one API request for the origin multiplier plus two per
        adjacent area (multiplier + EWT), all rate-limited.
        """
        now = self.api.engine.clock.now if t is None else t
        origin_mult = self.api.surge_multiplier(
            self.account_id, origin, car_type
        )
        my_area = self.region.area_of(origin)
        options: List[AvoidanceOption] = []
        if my_area is not None:
            for neighbor_id in self._adjacency.get(my_area.area_id, ()):
                area = self.region.area_by_id(neighbor_id)
                pickup = self._pickup_point_in(area, origin)
                mult = self.api.surge_multiplier(
                    self.account_id, pickup, car_type
                )
                times = self.api.time_estimates(
                    self.account_id, pickup, [car_type]
                )
                ewt_s = times[0].ewt_seconds
                options.append(
                    AvoidanceOption(
                        area_id=neighbor_id,
                        pickup_point=pickup,
                        multiplier=mult,
                        ewt_minutes=(
                            None if ewt_s is None else ewt_s / 60.0
                        ),
                        walk_minutes=walking_minutes(origin, pickup),
                    )
                )
        feasible = [
            o for o in options
            if o.multiplier < origin_mult and o.feasible_given
        ]
        best = None
        if feasible:
            best = min(
                feasible, key=lambda o: (o.multiplier, o.walk_minutes)
            )
        return AvoidanceOutcome(
            t=now,
            origin=origin,
            origin_multiplier=origin_mult,
            best=best,
            options=tuple(options),
        )


def evaluate_campaign(
    world: World,
    avoider: SurgeAvoider,
    origins: Sequence[LatLon],
    rounds: int,
    interval_s: float = 300.0,
    car_type: CarType = CarType.UBERX,
) -> Dict[int, List[AvoidanceOutcome]]:
    """Run the strategy from every origin once per surge interval.

    Returns origin-index -> outcomes, one per interval per origin.  Every
    interval yields an outcome (the paper's Fig 23 rate is over *all*
    time); intervals where the origin was not surging simply cannot save.
    """
    if rounds <= 0:
        raise ValueError("need at least one round")
    results: Dict[int, List[AvoidanceOutcome]] = {
        i: [] for i in range(len(origins))
    }
    for _ in range(rounds):
        for i, origin in enumerate(origins):
            results[i].append(avoider.evaluate(origin, car_type))
        world.advance(interval_s)
    return results
