"""Surge avoidance (§6): exploit surge-area boundaries to pay less.

Surge prices cannot be forecast (§5.4), but the *current* interval's
prices across adjacent areas are reliable for its remaining minutes.  If
an adjacent area is cheaper and the walk there is shorter than that
area's EWT, the passenger reserves immediately at the lower multiplier
and walks to meet the car.
"""

from repro.strategy.avoidance import (
    AvoidanceOption,
    AvoidanceOutcome,
    SurgeAvoider,
    evaluate_campaign,
)
from repro.strategy.waiting import (
    WaitOutcome,
    expected_premium_paid,
    wait_out_table,
)

__all__ = [
    "AvoidanceOption",
    "AvoidanceOutcome",
    "SurgeAvoider",
    "evaluate_campaign",
    "WaitOutcome",
    "expected_premium_paid",
    "wait_out_table",
]
