"""The wait-out strategy (§5.2).

"The vast majority of surges are short-lived, which suggests that savvy
Uber passengers should 'wait-out' surges rather than pay higher prices."

From a measured per-interval multiplier series, this module quantifies
exactly how savvy that is: given that it surges now, what multiplier
will a passenger face after waiting one, two, three intervals — and how
much of the premium does waiting typically recover?
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class WaitOutcome:
    """What waiting *k* intervals from a surging moment achieves."""

    intervals_waited: int
    observations: int
    #: P(multiplier back to 1.0 after waiting).
    fully_cleared: float
    #: P(multiplier strictly lower than at the start).
    improved: float
    #: Mean multiplier reduction achieved (can be negative: it got worse).
    mean_reduction: float
    #: Mean multiplier faced after the wait.
    mean_after: float


def wait_out_table(
    clock: Dict[int, float],
    max_wait_intervals: int = 4,
    surge_threshold: float = 1.0,
) -> List[WaitOutcome]:
    """Evaluate waiting 1..N intervals from every surging interval.

    *clock* is a per-interval multiplier series (jitter-free, e.g. from
    :func:`repro.analysis.surge_stats.interval_multipliers`).
    """
    if max_wait_intervals < 1:
        raise ValueError("must wait at least one interval")
    surging = [
        idx for idx, m in clock.items() if m > surge_threshold
    ]
    outcomes: List[WaitOutcome] = []
    for wait in range(1, max_wait_intervals + 1):
        cleared = 0
        improved = 0
        reductions: List[float] = []
        afters: List[float] = []
        n = 0
        for idx in surging:
            future = clock.get(idx + wait)
            if future is None:
                continue
            n += 1
            start = clock[idx]
            afters.append(future)
            reductions.append(start - future)
            if future <= 1.0:
                cleared += 1
            if future < start:
                improved += 1
        if n == 0:
            continue
        outcomes.append(WaitOutcome(
            intervals_waited=wait,
            observations=n,
            fully_cleared=cleared / n,
            improved=improved / n,
            mean_reduction=statistics.mean(reductions),
            mean_after=statistics.mean(afters),
        ))
    return outcomes


def expected_premium_paid(
    clock: Dict[int, float],
    wait_intervals: int,
) -> Tuple[float, float]:
    """(pay-now premium, pay-after-waiting premium), averaged.

    Premium = multiplier − 1 over all surging start moments with a
    future observation.  The difference is what patience is worth on
    this market, in multiplier units.
    """
    surging = [idx for idx, m in clock.items() if m > 1.0]
    now: List[float] = []
    later: List[float] = []
    for idx in surging:
        future = clock.get(idx + wait_intervals)
        if future is None:
            continue
        now.append(clock[idx] - 1.0)
        later.append(max(0.0, future - 1.0))
    if not now:
        raise ValueError("no surging intervals with a lookahead")
    return statistics.mean(now), statistics.mean(later)
